package xmldom

import (
	"io"
	"strings"
)

// Serialize writes the subtree rooted at n as XML text. Document nodes
// emit all their children; reconstruction experiments measure this path.
func Serialize(w io.Writer, n *Node) error {
	sw := &errWriter{w: w}
	serializeNode(sw, n)
	return sw.err
}

// SerializeString renders the subtree as a string.
func SerializeString(n *Node) string {
	var b strings.Builder
	_ = Serialize(&b, n)
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func serializeNode(w *errWriter, n *Node) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			serializeNode(w, c)
		}
	case ElementNode:
		w.writeString("<")
		w.writeString(n.Name)
		for _, a := range n.Attrs {
			w.writeString(" ")
			w.writeString(a.Name)
			w.writeString(`="`)
			w.writeString(escapeAttr(a.Value))
			w.writeString(`"`)
		}
		if len(n.Children) == 0 {
			w.writeString("/>")
			return
		}
		w.writeString(">")
		for _, c := range n.Children {
			serializeNode(w, c)
		}
		w.writeString("</")
		w.writeString(n.Name)
		w.writeString(">")
	case TextNode:
		w.writeString(escapeText(n.Value))
	case AttributeNode:
		w.writeString(escapeAttr(n.Value))
	case CommentNode:
		w.writeString("<!--")
		w.writeString(n.Value)
		w.writeString("-->")
	case ProcInstNode:
		w.writeString("<?")
		w.writeString(n.Name)
		if n.Value != "" {
			w.writeString(" ")
			w.writeString(n.Value)
		}
		w.writeString("?>")
	}
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "\n", "&#10;", "\t", "&#9;",
)

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
