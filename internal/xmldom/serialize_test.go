package xmldom

import (
	"errors"
	"strings"
	"testing"
)

func TestEscaping(t *testing.T) {
	doc := &Document{Root: &Node{Kind: DocumentNode}}
	el := &Node{Kind: ElementNode, Name: "a", Parent: doc.Root}
	el.Attrs = append(el.Attrs, &Node{
		Kind: AttributeNode, Name: "x", Value: `<>&"'` + "\n\t", Parent: el,
	})
	el.Children = append(el.Children, &Node{Kind: TextNode, Value: `a<b>&c"d'e`, Parent: el})
	doc.Root.Children = []*Node{el}
	doc.Number()
	out := SerializeString(doc.Root)
	want := `<a x="&lt;&gt;&amp;&quot;'&#10;&#9;">a&lt;b&gt;&amp;c"d'e</a>`
	if out != want {
		t.Fatalf("escaped output:\n got %s\nwant %s", out, want)
	}
	// And it survives a round trip.
	re, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := re.RootElement().Attr("x"); v != `<>&"'`+"\n\t" {
		t.Errorf("attr round trip: %q", v)
	}
	if re.RootElement().Text() != `a<b>&c"d'e` {
		t.Errorf("text round trip: %q", re.RootElement().Text())
	}
}

type failingWriter struct{ n int }

var errSink = errors.New("sink full")

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n -= len(p)
	if f.n < 0 {
		return 0, errSink
	}
	return len(p), nil
}

func TestSerializePropagatesWriteErrors(t *testing.T) {
	doc := mustParse(t, `<a><b>some text that will overflow the sink</b><c/></a>`)
	err := Serialize(&failingWriter{n: 5}, doc.Root)
	if !errors.Is(err, errSink) {
		t.Fatalf("expected sink error, got %v", err)
	}
}

func TestSerializeSubtree(t *testing.T) {
	doc := mustParse(t, `<r><a id="1"><b>x</b></a><a id="2"/></r>`)
	first := doc.RootElement().FirstChildElement("a")
	if got := SerializeString(first); got != `<a id="1"><b>x</b></a>` {
		t.Errorf("subtree = %s", got)
	}
	// Serializing an attribute node renders its escaped value.
	if got := SerializeString(first.Attrs[0]); got != "1" {
		t.Errorf("attr node = %q", got)
	}
}

func TestDoctypeWithoutSubset(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE r SYSTEM "ext.dtd"><r/>`)
	if doc.DoctypeName != "r" || doc.InternalSubset != "" {
		t.Errorf("doctype: %q / %q", doc.DoctypeName, doc.InternalSubset)
	}
	doc = mustParse(t, `<!DOCTYPE r PUBLIC "-//X//Y" "ext.dtd"><r/>`)
	if doc.DoctypeName != "r" {
		t.Errorf("public doctype: %q", doc.DoctypeName)
	}
	// A '>' inside a quoted literal must not terminate the DOCTYPE.
	doc = mustParse(t, `<!DOCTYPE r SYSTEM "weird>name.dtd"><r/>`)
	if doc.DoctypeName != "r" {
		t.Errorf("quoted > doctype: %q", doc.DoctypeName)
	}
}

func TestRenumberAfterMutation(t *testing.T) {
	doc := mustParse(t, `<r><a/><b/></r>`)
	root := doc.RootElement()
	sub := &Node{Kind: ElementNode, Name: "mid"}
	sub.Children = append(sub.Children, &Node{Kind: TextNode, Value: "t", Parent: sub})
	root.InsertChild(sub, 1)
	doc.Number()
	// All invariants restored.
	nodes := doc.Nodes()
	for i, n := range nodes {
		if n.Pre != i {
			t.Fatalf("pre %d at slice %d", n.Pre, i)
		}
	}
	if root.Children[1].Name != "mid" || root.Children[1].Ordinal != 2 {
		t.Errorf("inserted position: %s ord %d", root.Children[1].Name, root.Children[1].Ordinal)
	}
	if root.Size != 4 {
		t.Errorf("root size = %d", root.Size)
	}
	if !strings.Contains(SerializeString(doc.Root), "<a/><mid>t</mid><b/>") {
		t.Errorf("order: %s", SerializeString(doc.Root))
	}
}
