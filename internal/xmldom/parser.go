package xmldom

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError reports a malformed document with byte-offset context.
type ParseError struct {
	Offset int
	Msg    string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("xml: %s at offset %d", e.Msg, e.Offset)
}

type xmlParser struct {
	src []byte
	pos int
}

func (p *xmlParser) errf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses an XML document. The parser is non-validating, resolves
// the five predefined entities and character references, preserves
// comments and processing instructions, and captures the DOCTYPE
// internal subset verbatim for the dtd package.
func Parse(src []byte) (*Document, error) {
	p := &xmlParser{src: src}
	doc := &Document{Root: &Node{Kind: DocumentNode}}

	p.skipSpace()
	// Optional XML declaration.
	if p.hasPrefix("<?xml") {
		if _, err := p.readUntil("?>"); err != nil {
			return nil, err
		}
	}

	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		if !p.hasByte('<') {
			return nil, p.errf("content outside of root element")
		}
		switch {
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return nil, err
			}
			doc.Root.Children = append(doc.Root.Children, c)
		case p.hasPrefix("<?"):
			pi, err := p.parsePI()
			if err != nil {
				return nil, err
			}
			doc.Root.Children = append(doc.Root.Children, pi)
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.parseDoctype(doc); err != nil {
				return nil, err
			}
		default:
			if doc.RootElement() != nil {
				return nil, p.errf("multiple root elements")
			}
			el, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			doc.Root.Children = append(doc.Root.Children, el)
		}
	}
	if doc.RootElement() == nil {
		return nil, &ParseError{Offset: len(src), Msg: "missing root element"}
	}
	doc.Number()
	return doc, nil
}

// ParseString parses a document given as a string.
func ParseString(src string) (*Document, error) { return Parse([]byte(src)) }

func (p *xmlParser) hasPrefix(s string) bool {
	return p.pos+len(s) <= len(p.src) && string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *xmlParser) hasByte(c byte) bool {
	return p.pos < len(p.src) && p.src[p.pos] == c
}

func (p *xmlParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// readUntil consumes up to and including the delimiter, returning the
// text before it.
func (p *xmlParser) readUntil(delim string) (string, error) {
	idx := strings.Index(string(p.src[p.pos:]), delim)
	if idx < 0 {
		return "", p.errf("missing %q", delim)
	}
	out := string(p.src[p.pos : p.pos+idx])
	p.pos += idx + len(delim)
	return out, nil
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r >= 0x80
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || (r >= '0' && r <= '9')
}

func (p *xmlParser) parseName() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRune(p.src[p.pos:])
	if !isNameStart(r) {
		return "", p.errf("expected name")
	}
	p.pos += size
	for p.pos < len(p.src) {
		r, size = utf8.DecodeRune(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.pos += size
	}
	return string(p.src[start:p.pos]), nil
}

func (p *xmlParser) parseComment() (*Node, error) {
	p.pos += len("<!--")
	text, err := p.readUntil("-->")
	if err != nil {
		return nil, err
	}
	return &Node{Kind: CommentNode, Value: text}, nil
}

func (p *xmlParser) parsePI() (*Node, error) {
	p.pos += len("<?")
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	data, err := p.readUntil("?>")
	if err != nil {
		return nil, err
	}
	return &Node{Kind: ProcInstNode, Name: name, Value: strings.TrimSpace(data)}, nil
}

func (p *xmlParser) parseDoctype(doc *Document) error {
	p.pos += len("<!DOCTYPE")
	p.skipSpace()
	name, err := p.parseName()
	if err != nil {
		return err
	}
	doc.DoctypeName = name
	// Scan to the closing '>', capturing an optional [internal subset].
	depth := 0
	start := -1
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '[':
			if depth == 0 {
				start = p.pos + 1
			}
			depth++
			p.pos++
		case ']':
			depth--
			if depth == 0 && start >= 0 {
				doc.InternalSubset = string(p.src[start:p.pos])
			}
			p.pos++
		case '>':
			if depth == 0 {
				p.pos++
				return nil
			}
			p.pos++
		case '"', '\'':
			// Skip quoted system/public literals.
			q := c
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != q {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return p.errf("unterminated literal in DOCTYPE")
			}
			p.pos++
		default:
			p.pos++
		}
	}
	return p.errf("unterminated DOCTYPE")
}

func (p *xmlParser) parseElement() (*Node, error) {
	if !p.hasByte('<') {
		return nil, p.errf("expected '<'")
	}
	p.pos++
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	el := &Node{Kind: ElementNode, Name: name}

	// Attributes.
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated start tag <%s", name)
		}
		c := p.src[p.pos]
		if c == '>' {
			p.pos++
			break
		}
		if c == '/' {
			if !p.hasPrefix("/>") {
				return nil, p.errf("malformed empty-element tag")
			}
			p.pos += 2
			return el, nil
		}
		aname, err := p.parseName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.hasByte('=') {
			return nil, p.errf("expected '=' after attribute %s", aname)
		}
		p.pos++
		p.skipSpace()
		aval, err := p.parseAttValue()
		if err != nil {
			return nil, err
		}
		for _, a := range el.Attrs {
			if a.Name == aname {
				return nil, p.errf("duplicate attribute %s on <%s>", aname, name)
			}
		}
		el.Attrs = append(el.Attrs, &Node{Kind: AttributeNode, Name: aname, Value: aval, Parent: el})
	}

	// Content.
	var textBuf strings.Builder
	flushText := func() {
		if textBuf.Len() > 0 {
			el.Children = append(el.Children, &Node{Kind: TextNode, Value: textBuf.String(), Parent: el})
			textBuf.Reset()
		}
	}
	for {
		if p.pos >= len(p.src) {
			return nil, p.errf("missing </%s>", name)
		}
		c := p.src[p.pos]
		if c != '<' {
			// Character data up to the next markup.
			start := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != '<' {
				p.pos++
			}
			text, err := decodeEntities(string(p.src[start:p.pos]), p.errf)
			if err != nil {
				return nil, err
			}
			if strings.TrimSpace(text) != "" || textBuf.Len() > 0 {
				// Whitespace-only runs between elements are dropped;
				// whitespace adjacent to real text is preserved.
				if strings.TrimSpace(text) == "" && textBuf.Len() == 0 {
					continue
				}
				textBuf.WriteString(text)
			}
			continue
		}
		switch {
		case p.hasPrefix("</"):
			flushText()
			p.pos += 2
			end, err := p.parseName()
			if err != nil {
				return nil, err
			}
			if end != name {
				return nil, p.errf("mismatched end tag </%s>, expected </%s>", end, name)
			}
			p.skipSpace()
			if !p.hasByte('>') {
				return nil, p.errf("malformed end tag </%s", end)
			}
			p.pos++
			return el, nil
		case p.hasPrefix("<!--"):
			flushText()
			cm, err := p.parseComment()
			if err != nil {
				return nil, err
			}
			cm.Parent = el
			el.Children = append(el.Children, cm)
		case p.hasPrefix("<![CDATA["):
			p.pos += len("<![CDATA[")
			data, err := p.readUntil("]]>")
			if err != nil {
				return nil, err
			}
			textBuf.WriteString(data)
		case p.hasPrefix("<?"):
			flushText()
			pi, err := p.parsePI()
			if err != nil {
				return nil, err
			}
			pi.Parent = el
			el.Children = append(el.Children, pi)
		default:
			flushText()
			child, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			child.Parent = el
			el.Children = append(el.Children, child)
		}
	}
}

func (p *xmlParser) parseAttValue() (string, error) {
	if p.pos >= len(p.src) {
		return "", p.errf("expected attribute value")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", p.errf("attribute value must be quoted")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		if p.src[p.pos] == '<' {
			return "", p.errf("'<' in attribute value")
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated attribute value")
	}
	raw := string(p.src[start:p.pos])
	p.pos++
	return decodeEntities(raw, p.errf)
}

// decodeEntities resolves character references and the five predefined
// entities. Unknown entities are an error (no external DTD resolution).
// errf supplies position context — the same decoder serves the in-memory
// parser and the streaming tokenizer.
func decodeEntities(s string, errf func(format string, args ...any) error) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			return "", errf("unterminated entity reference")
		}
		ent := s[i+1 : i+end]
		switch {
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "amp":
			b.WriteByte('&')
		case ent == "apos":
			b.WriteByte('\'')
		case ent == "quot":
			b.WriteByte('"')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			n, err := strconv.ParseInt(ent[2:], 16, 32)
			if err != nil {
				return "", errf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		case strings.HasPrefix(ent, "#"):
			n, err := strconv.ParseInt(ent[1:], 10, 32)
			if err != nil {
				return "", errf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		default:
			return "", errf("unknown entity &%s;", ent)
		}
		i += end + 1
	}
	return b.String(), nil
}
