package xmldom

import (
	"fmt"
	"strings"
	"testing"
)

// dumpNode renders a node subtree in a canonical debug form so two DOMs
// can be compared structurally (parents checked separately).
func dumpNode(sb *strings.Builder, n *Node, depth int) {
	pad := strings.Repeat("  ", depth)
	switch n.Kind {
	case DocumentNode:
		fmt.Fprintf(sb, "%sdoc\n", pad)
	case ElementNode:
		fmt.Fprintf(sb, "%selem %s [", pad, n.Name)
		for _, a := range n.Attrs {
			fmt.Fprintf(sb, " %s=%q", a.Name, a.Value)
		}
		fmt.Fprintf(sb, " ]\n")
	case TextNode:
		fmt.Fprintf(sb, "%stext %q\n", pad, n.Value)
	case CommentNode:
		fmt.Fprintf(sb, "%scomment %q\n", pad, n.Value)
	case ProcInstNode:
		fmt.Fprintf(sb, "%spi %s %q\n", pad, n.Name, n.Value)
	case AttributeNode:
		fmt.Fprintf(sb, "%sattr %s=%q\n", pad, n.Name, n.Value)
	}
	for _, c := range n.Children {
		dumpNode(sb, c, depth+1)
	}
}

func dumpDoc(d *Document) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "doctype=%q subset=%q\n", d.DoctypeName, d.InternalSubset)
	dumpNode(&sb, d.Root, 0)
	return sb.String()
}

// checkParents verifies Parent pointers are wired consistently.
func checkParents(t *testing.T, n *Node) {
	t.Helper()
	for _, a := range n.Attrs {
		if a.Parent != n {
			t.Fatalf("attr %s parent not set", a.Name)
		}
	}
	for _, c := range n.Children {
		if n.Kind != DocumentNode && c.Parent != n {
			t.Fatalf("child of %s has wrong parent", n.Name)
		}
		checkParents(t, c)
	}
}

var streamDiffDocs = []struct {
	name string
	src  string
}{
	{"minimal", `<a/>`},
	{"decl", `<?xml version="1.0" encoding="UTF-8"?><root><x>1</x></root>`},
	{"nested", `<a><b><c>deep</c></b><b2 k="v"/></a>`},
	{"attrs", `<a x="1" y='two' z="a&amp;b"/>`},
	{"entities", `<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>`},
	{"ws-only-dropped", "<a>\n  <b>x</b>\n  <c>y</c>\n</a>"},
	{"ws-adjacent-kept", `<a>hello <b>w</b> bye </a>`},
	{"cdata", `<a><![CDATA[<raw> & ]]stuff]]></a>`},
	{"cdata-ws-merge", "<a>  <![CDATA[x]]>  </a>"},
	{"cdata-text-merge", `<a>pre<![CDATA[mid]]>post</a>`},
	{"comment-inside", `<a>x<!-- note -->y</a>`},
	{"pi-inside", `<a><?target  some data  ?></a>`},
	{"prolog-epilog", `<!-- lead --><?pi one?><root/><!-- tail --><?pi two?>`},
	{"doctype", `<!DOCTYPE root SYSTEM "r.dtd"><root/>`},
	{"doctype-subset", `<!DOCTYPE root [ <!ELEMENT root (#PCDATA)> <!ENTITY e "v"> ]><root/>`},
	{"doctype-bracket-literal", `<!DOCTYPE root [ <!ATTLIST a b CDATA "]"> ]><root/>`},
	{"unicode", `<règle état="café">héllo ☃</règle>`},
	{"deep-ws", "<a>\r\n\t<b>\r\n\t\t<c/>\r\n\t</b>\r\n</a>"},
	{"mixed-heavy", `<a> t1 <b/> t2 <![CDATA[c1]]> <b/>  <!--c--> t3 </a>`},
	{"empty-text-tags", `<a><b></b><c></c></a>`},
}

var streamDiffBad = []struct {
	name string
	src  string
}{
	{"empty", ``},
	{"ws-only", "  \n "},
	{"no-root-after-prolog", `<!-- c --><?pi d?>`},
	{"two-roots", `<a/><b/>`},
	{"content-outside", `<a/>trailing`},
	{"content-before", `junk<a/>`},
	{"mismatched-end", `<a></b>`},
	{"unterminated", `<a><b>`},
	{"dup-attr", `<a x="1" x="2"/>`},
	{"unquoted-attr", `<a x=1/>`},
	{"lt-in-attr", `<a x="<"/>`},
	{"bad-entity", `<a>&nope;</a>`},
	{"bad-charref", `<a>&#zz;</a>`},
	{"unterminated-entity", `<a>&amp</a>`},
	{"unterminated-comment", `<a><!-- oops</a>`},
	{"unterminated-cdata", `<a><![CDATA[x</a>`},
	{"unterminated-doctype", `<!DOCTYPE root [`},
	{"bad-empty-tag", `<a/ >`},
	{"missing-eq", `<a x "1"/>`},
}

// TestParseReaderDifferential pins ParseReader (tokenizer path) to
// Parse (in-memory path): identical DOM on success, both fail on error.
func TestParseReaderDifferential(t *testing.T) {
	for _, tc := range streamDiffDocs {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ParseString(tc.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			got, err := ParseReader(strings.NewReader(tc.src))
			if err != nil {
				t.Fatalf("ParseReader: %v", err)
			}
			if dumpDoc(got) != dumpDoc(want) {
				t.Fatalf("DOM mismatch\n-- Parse --\n%s\n-- ParseReader --\n%s", dumpDoc(want), dumpDoc(got))
			}
			checkParents(t, got.Root)
			// Preorder numbering must agree too.
			wn, gn := collectNums(want.Root), collectNums(got.Root)
			if len(wn) != len(gn) {
				t.Fatalf("numbering length %d vs %d", len(wn), len(gn))
			}
			for i := range wn {
				if wn[i] != gn[i] {
					t.Fatalf("numbering diverges at %d: %v vs %v", i, wn[i], gn[i])
				}
			}
		})
	}
	for _, tc := range streamDiffBad {
		t.Run("bad-"+tc.name, func(t *testing.T) {
			_, perr := ParseString(tc.src)
			_, serr := ParseReader(strings.NewReader(tc.src))
			if perr == nil {
				t.Fatalf("Parse accepted %q", tc.src)
			}
			if serr == nil {
				t.Fatalf("ParseReader accepted %q but Parse rejects: %v", tc.src, perr)
			}
		})
	}
}

func collectNums(n *Node) [][2]int {
	out := [][2]int{{n.Pre, n.Post}}
	for _, a := range n.Attrs {
		out = append(out, [2]int{a.Pre, a.Post})
	}
	for _, c := range n.Children {
		out = append(out, collectNums(c)...)
	}
	return out
}

// TestTokenizerSmallReads feeds the tokenizer one byte at a time to
// exercise buffer-boundary handling in Peek/Discard paths.
func TestTokenizerSmallReads(t *testing.T) {
	src := `<?xml version="1.0"?><!DOCTYPE r [ <!ENTITY x "y"> ]><r a="1"> t <b/><![CDATA[c]]> </r><!--end-->`
	want, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got, err := ParseReader(oneByteReader{strings.NewReader(src)})
	if err != nil {
		t.Fatalf("ParseReader: %v", err)
	}
	if dumpDoc(got) != dumpDoc(want) {
		t.Fatalf("DOM mismatch under 1-byte reads\n%s\nvs\n%s", dumpDoc(want), dumpDoc(got))
	}
}

type oneByteReader struct{ r *strings.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}
