// Package xmldom implements the XML data model used throughout xmlrdb: a
// parsed document is a tree of nodes with stable identities, document
// order, and pre/post/level numbering (the inputs every shredding scheme
// consumes).
//
// The parser is non-validating XML 1.0 without namespace processing:
// qualified names are kept verbatim ("ns:name"). The DOCTYPE internal
// subset is captured raw for the dtd package.
package xmldom

import "strings"

// NodeKind classifies a node.
type NodeKind int

// Node kinds, mirroring the XPath data model's seven kinds minus
// namespace nodes (not needed by the shredding schemes).
const (
	DocumentNode NodeKind = iota
	ElementNode
	AttributeNode
	TextNode
	CommentNode
	ProcInstNode
)

// String returns a short name for the kind ("elem", "attr", ...), used
// as the `kind` column value in shredded tables.
func (k NodeKind) String() string {
	switch k {
	case DocumentNode:
		return "doc"
	case ElementNode:
		return "elem"
	case AttributeNode:
		return "attr"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcInstNode:
		return "pi"
	default:
		return "unknown"
	}
}

// Node is one node of the document tree. Fields Pre, Post, Size and
// Level are filled in by Document.Number (the parser calls it).
type Node struct {
	Kind   NodeKind
	Name   string // element/attribute name; PI target
	Value  string // text content; attribute value; comment text; PI data
	Parent *Node
	// Attrs holds attribute nodes of an element, in document order.
	Attrs []*Node
	// Children holds element content (elements, text, comments, PIs).
	Children []*Node

	// Pre is the pre-order rank, which doubles as the node identifier.
	// Attributes are ranked directly after their owner element.
	Pre int
	// Post is the post-order rank.
	Post int
	// Size is the number of descendant nodes (attributes included).
	Size int
	// Level is the depth (document node = 0).
	Level int
	// Ordinal is the 1-based position among the parent's children (for
	// attributes, among the element's attributes).
	Ordinal int
}

// Document is a parsed XML document.
type Document struct {
	// Root is the document node; its children include the root element
	// plus any top-level comments/PIs.
	Root *Node
	// DoctypeName is the name in <!DOCTYPE name ...>, if present.
	DoctypeName string
	// InternalSubset is the raw text between [ and ] of the DOCTYPE.
	InternalSubset string
	// nodes caches document-order traversal (including attributes).
	nodes []*Node
}

// RootElement returns the document's root element (nil if absent).
func (d *Document) RootElement() *Node {
	for _, c := range d.Root.Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}

// Nodes returns every node in document order, attributes following their
// owner element. The slice is shared; callers must not mutate it.
func (d *Document) Nodes() []*Node {
	if d.nodes == nil {
		d.Number()
	}
	return d.nodes
}

// NodeCount returns the total number of nodes (attributes included).
func (d *Document) NodeCount() int { return len(d.Nodes()) }

// MaxDepth returns the maximum element nesting level in the document.
func (d *Document) MaxDepth() int {
	max := 0
	for _, n := range d.Nodes() {
		if n.Level > max {
			max = n.Level
		}
	}
	return max
}

// Number assigns Pre/Post/Size/Level/Ordinal to every node. It is
// idempotent and called by the parser; call it again after mutating the
// tree in place.
func (d *Document) Number() {
	d.nodes = d.nodes[:0]
	pre, post := 0, 0
	var walk func(n *Node, level int) int
	walk = func(n *Node, level int) int {
		n.Pre = pre
		n.Level = level
		pre++
		d.nodes = append(d.nodes, n)
		descendants := 0
		for i, a := range n.Attrs {
			a.Parent = n
			a.Ordinal = i + 1
			a.Pre = pre
			a.Level = level + 1
			pre++
			a.Post = post
			post++
			a.Size = 0
			d.nodes = append(d.nodes, a)
			descendants++
		}
		for i, c := range n.Children {
			c.Parent = n
			c.Ordinal = i + 1
			descendants += walk(c, level+1) + 1
		}
		n.Post = post
		post++
		n.Size = descendants
		return descendants
	}
	walk(d.Root, 0)
}

// Copy makes a deep copy of the subtree rooted at n. Parent pointers and
// numbering are left unset; renumber via Document.Number after grafting.
func (n *Node) Copy() *Node {
	out := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value}
	for _, a := range n.Attrs {
		ac := a.Copy()
		ac.Parent = out
		out.Attrs = append(out.Attrs, ac)
	}
	for _, c := range n.Children {
		cc := c.Copy()
		cc.Parent = out
		out.Children = append(out.Children, cc)
	}
	return out
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the element children of n, optionally filtered
// by name ("" matches all).
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first element child with the given name
// ("" matches any), or nil.
func (n *Node) FirstChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "" || c.Name == name) {
			return c
		}
	}
	return nil
}

// Text returns the concatenated text content of the subtree (the XPath
// string value of an element), or the node's own value for non-elements.
func (n *Node) Text() string {
	switch n.Kind {
	case TextNode, AttributeNode, CommentNode, ProcInstNode:
		return n.Value
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		for _, c := range m.Children {
			switch c.Kind {
			case TextNode:
				b.WriteString(c.Value)
			case ElementNode:
				walk(c)
			}
		}
	}
	walk(n)
	return b.String()
}

// Descendants appends all descendant nodes of n (attributes excluded) in
// document order.
func (n *Node) Descendants() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		for _, c := range m.Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(n)
	return out
}

// Path returns the absolute element path of n, like "/site/people/person".
func (n *Node) Path() string {
	var parts []string
	for m := n; m != nil && m.Kind != DocumentNode; m = m.Parent {
		switch m.Kind {
		case ElementNode:
			parts = append(parts, m.Name)
		case AttributeNode:
			parts = append(parts, "@"+m.Name)
		case TextNode:
			parts = append(parts, "text()")
		}
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	if b.Len() == 0 {
		return "/"
	}
	return b.String()
}

// InsertChild inserts child at position idx (0-based) among n's
// children, clamping idx into range. Renumber the owning document after
// structural edits.
func (n *Node) InsertChild(child *Node, idx int) {
	if idx < 0 {
		idx = 0
	}
	if idx > len(n.Children) {
		idx = len(n.Children)
	}
	child.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[idx+1:], n.Children[idx:])
	n.Children[idx] = child
}

// RemoveChild removes the idx-th child and returns it (nil if out of
// range).
func (n *Node) RemoveChild(idx int) *Node {
	if idx < 0 || idx >= len(n.Children) {
		return nil
	}
	c := n.Children[idx]
	n.Children = append(n.Children[:idx], n.Children[idx+1:]...)
	c.Parent = nil
	return c
}
