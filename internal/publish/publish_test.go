package publish

import (
	"strings"
	"testing"

	"repro/internal/shred"
	"repro/internal/xmldom"
)

const doc = `<bib><book id="b1"><title>TCP</title></book><book id="b2"><title>Web</title></book></bib>`

func TestDocumentRoundTrip(t *testing.T) {
	d, err := xmldom.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	s := shred.NewInterval(false)
	db, err := shred.LoadDocument(s, d)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Document(&b, db, s); err != nil {
		t.Fatal(err)
	}
	if b.String() != doc {
		t.Errorf("published:\n%s", b.String())
	}
}

func TestResultSetEnvelope(t *testing.T) {
	d, _ := xmldom.ParseString(doc)
	s := shred.NewInterval(false)
	db, err := shred.LoadDocument(s, d)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ResultSet(&b, db, s, `/bib/book/title`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{`<results query="/bib/book/title">`, `>TCP</match>`, `>Web</match>`} {
		if !strings.Contains(out, frag) {
			t.Errorf("result set missing %q:\n%s", frag, out)
		}
	}
	// The envelope itself is well-formed XML.
	if _, err := xmldom.ParseString(out); err != nil {
		t.Errorf("envelope does not parse: %v", err)
	}
}

func TestSubtrees(t *testing.T) {
	d, _ := xmldom.ParseString(doc)
	s := shred.NewInterval(false)
	db, err := shred.LoadDocument(s, d)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Subtrees(&b, db, s, `/bib/book[@id='b2']`); err != nil {
		t.Fatal(err)
	}
	want := `<book id="b2"><title>Web</title></book>`
	if b.String() != want {
		t.Errorf("subtree = %s", b.String())
	}
}

func TestFragmentByID(t *testing.T) {
	d, _ := xmldom.ParseString(doc)
	s := shred.NewInterval(false)
	db, err := shred.LoadDocument(s, d)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := shred.QueryIDs(db, s, `/bib/book[@id='b1']`)
	if err != nil || len(ids) != 1 {
		t.Fatalf("locate: %v %v", ids, err)
	}
	var b strings.Builder
	if err := Fragment(&b, db, s, ids[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<title>TCP</title>") {
		t.Errorf("fragment = %s", b.String())
	}
	if err := Fragment(&b, db, s, 99999); err == nil {
		t.Error("bogus id accepted")
	}
}
