// Package publish turns relational query results back into XML — the
// retrieval half of the paper's pipeline. It renders whole stored
// documents (via a scheme's Reconstruct) and wraps query result sets as
// XML fragments, the shape SQL/X-style publishing produces.
package publish

import (
	"fmt"
	"io"

	"repro/internal/shred"
	"repro/internal/sqldb"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// Document publishes the full stored document as XML text.
func Document(w io.Writer, db *sqldb.Database, s shred.Scheme) error {
	doc, err := s.Reconstruct(db)
	if err != nil {
		return err
	}
	return xmldom.Serialize(w, doc.Root)
}

// ResultSet wraps a translated query's (id, val) rows in a <results>
// envelope:
//
//	<results query="..."><match id="..."> value </match>...</results>
func ResultSet(w io.Writer, db *sqldb.Database, s shred.Scheme, query string) error {
	rows, err := shred.Query(db, s, query)
	if err != nil {
		return err
	}
	env := &xmldom.Node{Kind: xmldom.ElementNode, Name: "results"}
	qa := &xmldom.Node{Kind: xmldom.AttributeNode, Name: "query", Value: query, Parent: env}
	env.Attrs = append(env.Attrs, qa)
	for _, r := range rows.Data {
		m := &xmldom.Node{Kind: xmldom.ElementNode, Name: "match", Parent: env}
		ida := &xmldom.Node{Kind: xmldom.AttributeNode, Name: "id", Value: r[0].Text(), Parent: m}
		m.Attrs = append(m.Attrs, ida)
		if len(r) > 1 && !r[1].IsNull() {
			m.Children = append(m.Children, &xmldom.Node{Kind: xmldom.TextNode, Value: r[1].Text(), Parent: m})
		}
		env.Children = append(env.Children, m)
	}
	return xmldom.Serialize(w, env)
}

// Subtrees publishes the full subtree of every node a query matches, by
// reconstructing the document once and serializing the matched nodes.
// This is the "reconstruct the answers, not just their ids" mode the
// tutorial's publishing discussion calls out as the expensive case.
func Subtrees(w io.Writer, db *sqldb.Database, s shred.Scheme, query string) error {
	doc, err := s.Reconstruct(db)
	if err != nil {
		return err
	}
	p, err := xpath.Parse(query)
	if err != nil {
		return err
	}
	nodes := xpath.Eval(doc, p)
	for i, n := range nodes {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := xmldom.Serialize(w, n); err != nil {
			return err
		}
	}
	return nil
}

// Fragment renders one reconstructed subtree by node id (Edge, Binary,
// Interval and Dewey ids are pre-order ranks; Inline is unsupported).
func Fragment(w io.Writer, db *sqldb.Database, s shred.Scheme, id int64) error {
	doc, err := s.Reconstruct(db)
	if err != nil {
		return err
	}
	for _, n := range doc.Nodes() {
		if int64(n.Pre) == id {
			return xmldom.Serialize(w, n)
		}
	}
	return fmt.Errorf("publish: no node with id %d", id)
}
