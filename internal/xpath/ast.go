// Package xpath implements the XPath 1.0 navigational subset used by the
// paper's query workloads: child/descendant/attribute/parent and sibling
// axes, name and kind tests, and predicates over paths, positions and
// values.
//
// The same AST feeds two consumers: the direct DOM evaluator in this
// package (the "native" baseline of experiment T5) and the per-scheme
// SQL translators in internal/translate.
package xpath

import (
	"fmt"
	"strings"
)

// Axis enumerates the supported XPath axes.
type Axis int

// Supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisAttribute
	AxisSelf
	AxisParent
	AxisAncestor
	AxisFollowingSibling
	AxisPrecedingSibling
)

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisAttribute:
		return "attribute"
	case AxisSelf:
		return "self"
	case AxisParent:
		return "parent"
	case AxisAncestor:
		return "ancestor"
	case AxisFollowingSibling:
		return "following-sibling"
	case AxisPrecedingSibling:
		return "preceding-sibling"
	default:
		return fmt.Sprintf("axis(%d)", int(a))
	}
}

// TestKind classifies node tests.
type TestKind int

// Node test kinds.
const (
	TestName     TestKind = iota // element or attribute by name
	TestWildcard                 // *
	TestText                     // text()
	TestNode                     // node()
	TestComment                  // comment()
)

// NodeTest is the node test of a step.
type NodeTest struct {
	Kind TestKind
	Name string
}

// Step is one location step: axis :: test [pred]*.
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

// Path is a location path.
type Path struct {
	// Absolute paths start at the document root.
	Absolute bool
	Steps    []Step
}

// Expr is a predicate expression.
type Expr interface{ xpexpr() }

// BinaryExpr covers and/or and comparisons (= != < <= > >=) with XPath's
// existential node-set semantics.
type BinaryExpr struct {
	Op string
	L  Expr
	R  Expr
}

// PathOperand is a relative path used as a predicate operand.
type PathOperand struct{ Path *Path }

// StringLit is a string literal.
type StringLit struct{ Val string }

// NumberLit is a numeric literal. A bare number predicate [N] is
// shorthand for [position() = N].
type NumberLit struct{ Val float64 }

// FuncCall is one of the supported predicate functions: position, last,
// count, contains, starts-with, not, true, false, string-length.
type FuncCall struct {
	Name string
	Args []Expr
}

func (*BinaryExpr) xpexpr()  {}
func (*PathOperand) xpexpr() {}
func (*StringLit) xpexpr()   {}
func (*NumberLit) xpexpr()   {}
func (*FuncCall) xpexpr()    {}

// String renders the path in normalized XPath syntax.
func (p *Path) String() string {
	var b strings.Builder
	if p.Absolute && len(p.Steps) == 0 {
		return "/"
	}
	for i, s := range p.Steps {
		if i > 0 || p.Absolute {
			if s.Axis == AxisDescendant || s.Axis == AxisDescendantOrSelf {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
		}
		b.WriteString(stepString(s))
	}
	return b.String()
}

func stepString(s Step) string {
	var b strings.Builder
	switch s.Axis {
	case AxisAttribute:
		b.WriteString("@")
	case AxisParent:
		if s.Test.Kind == TestNode {
			b.WriteString("..")
			for _, p := range s.Preds {
				b.WriteString("[" + exprText(p) + "]")
			}
			return b.String()
		}
		b.WriteString("parent::")
	case AxisSelf:
		if s.Test.Kind == TestNode {
			b.WriteString(".")
			for _, p := range s.Preds {
				b.WriteString("[" + exprText(p) + "]")
			}
			return b.String()
		}
		b.WriteString("self::")
	case AxisAncestor:
		b.WriteString("ancestor::")
	case AxisFollowingSibling:
		b.WriteString("following-sibling::")
	case AxisPrecedingSibling:
		b.WriteString("preceding-sibling::")
	}
	switch s.Test.Kind {
	case TestName:
		b.WriteString(s.Test.Name)
	case TestWildcard:
		b.WriteString("*")
	case TestText:
		b.WriteString("text()")
	case TestNode:
		b.WriteString("node()")
	case TestComment:
		b.WriteString("comment()")
	}
	for _, p := range s.Preds {
		b.WriteString("[" + exprText(p) + "]")
	}
	return b.String()
}

func exprText(e Expr) string {
	switch e := e.(type) {
	case *BinaryExpr:
		return exprText(e.L) + " " + e.Op + " " + exprText(e.R)
	case *PathOperand:
		return e.Path.String()
	case *StringLit:
		return "'" + e.Val + "'"
	case *NumberLit:
		return trimFloat(e.Val)
	case *FuncCall:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprText(a))
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return "?"
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
