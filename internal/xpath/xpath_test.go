package xpath

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
)

const testDoc = `<bib>
  <book year="1994" id="b1">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price>
  </book>
  <book year="2000" id="b2">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <price>39.95</price>
  </book>
  <article id="a1">
    <title>On Views</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
  </article>
</bib>`

func evalStrings(t *testing.T, doc *xmldom.Document, q string) []string {
	t.Helper()
	p, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	nodes := Eval(doc, p)
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Text()
	}
	return out
}

func TestEvalBasics(t *testing.T) {
	doc, err := xmldom.ParseString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want []string
	}{
		{"/bib/book/title", []string{"TCP/IP Illustrated", "Data on the Web"}},
		{"//title", []string{"TCP/IP Illustrated", "Data on the Web", "On Views"}},
		{"/bib/book[@year='1994']/title", []string{"TCP/IP Illustrated"}},
		{"/bib/book[price < 50]/title", []string{"Data on the Web"}},
		{"/bib/book[price > 50]/title", []string{"TCP/IP Illustrated"}},
		{"//book[author/last='Suciu']/@id", []string{"b2"}},
		{"/bib/*/title", []string{"TCP/IP Illustrated", "Data on the Web", "On Views"}},
		{"//author[1]/last", []string{"Stevens", "Abiteboul", "Abiteboul"}},
		{"//author[2]/last", []string{"Buneman"}},
		{"//author[last()]/last", []string{"Stevens", "Suciu", "Abiteboul"}},
		{"//book[count(author) > 1]/@id", []string{"b2"}},
		{"//book[contains(title, 'Web')]/@id", []string{"b2"}},
		{"//book[starts-with(title, 'TCP')]/@id", []string{"b1"}},
		{"//book[not(author/last='Stevens')]/@id", []string{"b2"}},
		{"/bib/book/title/text()", []string{"TCP/IP Illustrated", "Data on the Web"}},
		{"//last[. = 'Dan']", nil},
		{"//first[. = 'Dan']", []string{"Dan"}},
		{"//book[@year > 1995 and price < 50]/@id", []string{"b2"}},
		{"//book[@year < 1990 or @year > 1999]/@id", []string{"b2"}},
		{"//author/last[../first='Serge']", []string{"Abiteboul", "Abiteboul"}},
		{"/bib/book[2]/author[position() = 3]/last", []string{"Suciu"}},
		{"//article/ancestor::bib/book[1]/@id", []string{"b1"}},
		{"/bib/book[1]/following-sibling::book/@id", []string{"b2"}},
		{"/bib/book[2]/preceding-sibling::book/@id", []string{"b1"}},
		{"//author[first='Peter']/parent::book/@id", []string{"b2"}},
	}
	for _, c := range cases {
		got := evalStrings(t, doc, c.q)
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("%s = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestEvalDocumentOrderAndDedup(t *testing.T) {
	doc, err := xmldom.ParseString(`<r><a><b/><b/></a><a><b/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// //a//b and //b must agree (dedup across overlapping contexts).
	p1 := MustParse("//a//b")
	p2 := MustParse("//b")
	n1, n2 := Eval(doc, p1), Eval(doc, p2)
	if len(n1) != 3 || len(n2) != 3 {
		t.Fatalf("counts: %d, %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("order mismatch at %d", i)
		}
		if i > 0 && n1[i-1].Pre >= n1[i].Pre {
			t.Fatal("not in document order")
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		"",
		"/bib/",
		"//",
		"/bib/book[",
		"/bib/book[]",
		"/bib/book[@]",
		"bib/book[price <]",
		"/bib/bogus-axis::x",
		"/bib/book[1",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("parse %q: expected error", q)
		}
	}
}

func TestPathString(t *testing.T) {
	cases := []string{
		"/site/people/person",
		"//item",
		"/a//b",
		"/a/@id",
		"/a/text()",
		"/a/*",
	}
	for _, q := range cases {
		p := MustParse(q)
		if p.String() != q {
			t.Errorf("String(%q) = %q", q, p.String())
		}
	}
	// Round-trip: parse(String(p)) is structurally identical.
	for _, q := range append(cases, "/a/b[c='x'][2]", "//a[contains(b, 'z')]") {
		p := MustParse(q)
		p2, err := Parse(p.String())
		if err != nil {
			t.Errorf("re-parse %q (from %q): %v", p.String(), q, err)
			continue
		}
		if p2.String() != p.String() {
			t.Errorf("unstable rendering: %q vs %q", p.String(), p2.String())
		}
	}
}

func TestExistentialComparison(t *testing.T) {
	doc, err := xmldom.ParseString(`<r><p><v>1</v><v>5</v></p><p><v>2</v></p></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Existential: p qualifies if ANY v matches.
	if got := len(Eval(doc, MustParse("//p[v = 5]"))); got != 1 {
		t.Errorf("[v = 5]: %d", got)
	}
	if got := len(Eval(doc, MustParse("//p[v > 0]"))); got != 2 {
		t.Errorf("[v > 0]: %d", got)
	}
	// != is existential too: p with v=1,v=5 has a v != 1.
	if got := len(Eval(doc, MustParse("//p[v != 1]"))); got != 2 {
		t.Errorf("[v != 1]: %d", got)
	}
}

func TestEvalFromRelative(t *testing.T) {
	doc, err := xmldom.ParseString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	books := Eval(doc, MustParse("/bib/book"))
	if len(books) != 2 {
		t.Fatal("setup")
	}
	rel := MustParse("author/last")
	got := EvalFrom(books[1:], rel)
	if len(got) != 3 {
		t.Errorf("relative eval = %d nodes", len(got))
	}
}
