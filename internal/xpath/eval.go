package xpath

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmldom"
)

// Eval evaluates a path against a document and returns the result node
// set in document order without duplicates. This is the "native"
// main-memory baseline the relational translations are compared against.
func Eval(doc *xmldom.Document, p *Path) []*xmldom.Node {
	ctx := []*xmldom.Node{doc.Root}
	if !p.Absolute {
		ctx = []*xmldom.Node{doc.Root}
	}
	out := evalSteps(ctx, p.Steps)
	return sortUnique(out)
}

// EvalFrom evaluates a relative path from the given context nodes.
func EvalFrom(ctx []*xmldom.Node, p *Path) []*xmldom.Node {
	return sortUnique(evalSteps(ctx, p.Steps))
}

func evalSteps(ctx []*xmldom.Node, steps []Step) []*xmldom.Node {
	cur := ctx
	for i := range steps {
		cur = evalStep(cur, &steps[i])
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// evalStep applies one step to every context node, preserving XPath's
// per-context-node position semantics for predicates. For the
// descendant axis (the // abbreviation, which expands to
// descendant-or-self::node()/child::test), positional predicates apply
// per parent group — //author[1] selects the first author under each
// parent, matching both the standard and the relational translations.
func evalStep(ctx []*xmldom.Node, s *Step) []*xmldom.Node {
	var out []*xmldom.Node
	seen := map[*xmldom.Node]bool{}
	add := func(cands []*xmldom.Node) {
		for _, c := range cands {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	for _, n := range ctx {
		cands := axisNodes(n, s.Axis, &s.Test)
		if s.Axis == xpathDescendantAxis(s.Axis) && len(s.Preds) > 0 {
			// Group by parent, preserving document order of groups.
			var order []*xmldom.Node
			groups := map[*xmldom.Node][]*xmldom.Node{}
			for _, c := range cands {
				if _, ok := groups[c.Parent]; !ok {
					order = append(order, c.Parent)
				}
				groups[c.Parent] = append(groups[c.Parent], c)
			}
			for _, p := range order {
				add(applyPreds(groups[p], s.Preds))
			}
			continue
		}
		add(applyPreds(cands, s.Preds))
	}
	return out
}

// xpathDescendantAxis returns its argument when it is a descendant-kind
// axis (used as a readable membership test).
func xpathDescendantAxis(a Axis) Axis {
	if a == AxisDescendant || a == AxisDescendantOrSelf {
		return a
	}
	return -1
}

func axisNodes(n *xmldom.Node, axis Axis, test *NodeTest) []*xmldom.Node {
	var out []*xmldom.Node
	add := func(c *xmldom.Node) {
		if matchTest(c, test) {
			out = append(out, c)
		}
	}
	switch axis {
	case AxisChild:
		for _, c := range n.Children {
			add(c)
		}
	case AxisDescendant:
		var walk func(*xmldom.Node)
		walk = func(m *xmldom.Node) {
			for _, c := range m.Children {
				add(c)
				walk(c)
			}
		}
		walk(n)
	case AxisDescendantOrSelf:
		add(n)
		var walk func(*xmldom.Node)
		walk = func(m *xmldom.Node) {
			for _, c := range m.Children {
				add(c)
				walk(c)
			}
		}
		walk(n)
	case AxisAttribute:
		for _, a := range n.Attrs {
			add(a)
		}
	case AxisSelf:
		add(n)
	case AxisParent:
		if n.Parent != nil {
			add(n.Parent)
		}
	case AxisAncestor:
		for m := n.Parent; m != nil; m = m.Parent {
			add(m)
		}
	case AxisFollowingSibling:
		if n.Parent != nil {
			after := false
			for _, c := range n.Parent.Children {
				if c == n {
					after = true
					continue
				}
				if after {
					add(c)
				}
			}
		}
	case AxisPrecedingSibling:
		if n.Parent != nil {
			for _, c := range n.Parent.Children {
				if c == n {
					break
				}
				add(c)
			}
		}
	}
	return out
}

func matchTest(n *xmldom.Node, t *NodeTest) bool {
	switch t.Kind {
	case TestName:
		return (n.Kind == xmldom.ElementNode || n.Kind == xmldom.AttributeNode) && n.Name == t.Name
	case TestWildcard:
		return n.Kind == xmldom.ElementNode || n.Kind == xmldom.AttributeNode
	case TestText:
		return n.Kind == xmldom.TextNode
	case TestComment:
		return n.Kind == xmldom.CommentNode
	case TestNode:
		return true
	}
	return false
}

func applyPreds(cands []*xmldom.Node, preds []Expr) []*xmldom.Node {
	for _, p := range preds {
		if len(cands) == 0 {
			return nil
		}
		var kept []*xmldom.Node
		size := len(cands)
		for i, c := range cands {
			v := evalExpr(c, i+1, size, p)
			// Numeric predicate values are positional shorthand
			// ([last()] means [position() = last()]).
			if predTruthGeneral(v, i+1) {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	return cands
}

// value is the XPath 1.0 value space: node-set, string, number, boolean.
type value struct {
	nodes   []*xmldom.Node
	str     string
	num     float64
	boolean bool
	kind    byte // 'n' nodeset, 's' string, 'f' number, 'b' bool
}

func nodesVal(ns []*xmldom.Node) value { return value{nodes: ns, kind: 'n'} }
func strVal(s string) value            { return value{str: s, kind: 's'} }
func numVal(f float64) value           { return value{num: f, kind: 'f'} }
func boolVal(b bool) value             { return value{boolean: b, kind: 'b'} }

// predTruth applies the predicate truth rule: numbers compare against
// position (handled by the caller passing position as equality), here a
// bare number is never reached because evalExpr rewrites it; node-sets
// are true when non-empty.
func predTruth(v value) bool {
	switch v.kind {
	case 'n':
		return len(v.nodes) > 0
	case 's':
		return v.str != ""
	case 'f':
		return v.num != 0 // positional case handled in evalExpr
	case 'b':
		return v.boolean
	}
	return false
}

func (v value) toString() string {
	switch v.kind {
	case 's':
		return v.str
	case 'f':
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case 'b':
		if v.boolean {
			return "true"
		}
		return "false"
	case 'n':
		if len(v.nodes) == 0 {
			return ""
		}
		return v.nodes[0].Text()
	}
	return ""
}

func (v value) toNumber() float64 {
	switch v.kind {
	case 'f':
		return v.num
	case 's':
		f, err := strconv.ParseFloat(strings.TrimSpace(v.str), 64)
		if err != nil {
			return nan()
		}
		return f
	case 'b':
		if v.boolean {
			return 1
		}
		return 0
	case 'n':
		return strVal(v.toString()).toNumber()
	}
	return nan()
}

func nan() float64 {
	var z float64
	return z / z
}

func evalExpr(ctx *xmldom.Node, pos, size int, e Expr) value {
	switch e := e.(type) {
	case *NumberLit:
		// Bare numeric predicate: position() = N.
		return boolVal(float64(pos) == e.Val)
	case *StringLit:
		return strVal(e.Val)
	case *PathOperand:
		return nodesVal(evalSteps([]*xmldom.Node{ctx}, e.Path.Steps))
	case *FuncCall:
		return evalFunc(ctx, pos, size, e)
	case *BinaryExpr:
		switch e.Op {
		case "and":
			l := evalExpr(ctx, pos, size, e.L)
			if !predTruthGeneral(l, pos) {
				return boolVal(false)
			}
			r := evalExpr(ctx, pos, size, e.R)
			return boolVal(predTruthGeneral(r, pos))
		case "or":
			l := evalExpr(ctx, pos, size, e.L)
			if predTruthGeneral(l, pos) {
				return boolVal(true)
			}
			r := evalExpr(ctx, pos, size, e.R)
			return boolVal(predTruthGeneral(r, pos))
		default:
			return boolVal(compare(ctx, pos, size, e))
		}
	}
	return boolVal(false)
}

// predTruthGeneral treats a raw number as positional shorthand.
func predTruthGeneral(v value, pos int) bool {
	if v.kind == 'f' {
		return float64(pos) == v.num
	}
	return predTruth(v)
}

// compare implements XPath comparison semantics including existential
// node-set comparison.
func compare(ctx *xmldom.Node, pos, size int, e *BinaryExpr) bool {
	l := evalOperand(ctx, pos, size, e.L)
	r := evalOperand(ctx, pos, size, e.R)

	// Node-set vs node-set or scalar: existential.
	if l.kind == 'n' || r.kind == 'n' {
		ls := operandStrings(l)
		rs := operandStrings(r)
		for _, a := range ls {
			for _, b := range rs {
				if cmpStrings(a, b, e.Op, l.kind == 'n' && r.kind == 'f' || l.kind == 'f' && r.kind == 'n' || bothNumeric(a, b)) {
					return true
				}
			}
		}
		return false
	}
	numeric := l.kind == 'f' || r.kind == 'f' || bothNumeric(l.toString(), r.toString())
	return cmpStrings(l.toString(), r.toString(), e.Op, numeric)
}

func evalOperand(ctx *xmldom.Node, pos, size int, e Expr) value {
	switch e := e.(type) {
	case *NumberLit:
		return numVal(e.Val)
	default:
		return evalExpr(ctx, pos, size, e)
	}
}

func operandStrings(v value) []string {
	if v.kind == 'n' {
		out := make([]string, len(v.nodes))
		for i, n := range v.nodes {
			out[i] = n.Text()
		}
		return out
	}
	return []string{v.toString()}
}

func bothNumeric(a, b string) bool {
	_, err1 := strconv.ParseFloat(strings.TrimSpace(a), 64)
	_, err2 := strconv.ParseFloat(strings.TrimSpace(b), 64)
	return err1 == nil && err2 == nil
}

func cmpStrings(a, b, op string, numeric bool) bool {
	if numeric {
		fa, err1 := strconv.ParseFloat(strings.TrimSpace(a), 64)
		fb, err2 := strconv.ParseFloat(strings.TrimSpace(b), 64)
		if err1 == nil && err2 == nil {
			switch op {
			case "=":
				return fa == fb
			case "!=":
				return fa != fb
			case "<":
				return fa < fb
			case "<=":
				return fa <= fb
			case ">":
				return fa > fb
			case ">=":
				return fa >= fb
			}
			return false
		}
	}
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func evalFunc(ctx *xmldom.Node, pos, size int, f *FuncCall) value {
	switch f.Name {
	case "position":
		return numVal(float64(pos))
	case "last":
		return numVal(float64(size))
	case "true":
		return boolVal(true)
	case "false":
		return boolVal(false)
	case "count":
		if len(f.Args) != 1 {
			return numVal(0)
		}
		v := evalExpr(ctx, pos, size, f.Args[0])
		return numVal(float64(len(v.nodes)))
	case "not":
		if len(f.Args) != 1 {
			return boolVal(false)
		}
		v := evalExpr(ctx, pos, size, f.Args[0])
		return boolVal(!predTruthGeneral(v, pos))
	case "contains":
		if len(f.Args) != 2 {
			return boolVal(false)
		}
		a := evalOperand(ctx, pos, size, f.Args[0]).toString()
		b := evalOperand(ctx, pos, size, f.Args[1]).toString()
		return boolVal(strings.Contains(a, b))
	case "starts-with":
		if len(f.Args) != 2 {
			return boolVal(false)
		}
		a := evalOperand(ctx, pos, size, f.Args[0]).toString()
		b := evalOperand(ctx, pos, size, f.Args[1]).toString()
		return boolVal(strings.HasPrefix(a, b))
	case "string-length":
		if len(f.Args) != 1 {
			return numVal(float64(len(ctx.Text())))
		}
		return numVal(float64(len(evalOperand(ctx, pos, size, f.Args[0]).toString())))
	case "string":
		if len(f.Args) == 0 {
			return strVal(ctx.Text())
		}
		return strVal(evalOperand(ctx, pos, size, f.Args[0]).toString())
	case "number":
		if len(f.Args) == 0 {
			return numVal(strVal(ctx.Text()).toNumber())
		}
		return numVal(evalOperand(ctx, pos, size, f.Args[0]).toNumber())
	}
	return boolVal(false)
}

func sortUnique(ns []*xmldom.Node) []*xmldom.Node {
	if len(ns) <= 1 {
		return ns
	}
	sort.SliceStable(ns, func(i, j int) bool { return ns[i].Pre < ns[j].Pre })
	out := ns[:1]
	for _, n := range ns[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}
