package xpath

import (
	"testing"

	"repro/internal/xmldom"
)

func TestExplicitAxes(t *testing.T) {
	doc, err := xmldom.ParseString(`<r><a><b id="1"/><b id="2"/><c/></a><a><b id="3"/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want int
	}{
		{"/r/child::a", 2},
		{"/r/descendant::b", 3},
		{"/r/a/b/parent::a", 2},
		{"/r/a/b/ancestor::r", 1},
		{"/r/a/b[@id='1']/following-sibling::b", 1},
		{"/r/a/b[@id='1']/following-sibling::c", 1},
		{"/r/a/c/preceding-sibling::b", 2},
		{"/r/a/self::a", 2},
		{"/r/descendant-or-self::a", 2},
		{"/r/a/node()", 4},
	}
	for _, c := range cases {
		got := len(Eval(doc, MustParse(c.q)))
		if got != c.want {
			t.Errorf("%s = %d nodes, want %d", c.q, got, c.want)
		}
	}
}

func TestCommentAndNodeTests(t *testing.T) {
	doc, err := xmldom.ParseString(`<r><!--one--><a/><!--two--></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Eval(doc, MustParse("/r/comment()"))); got != 2 {
		t.Errorf("comment() = %d", got)
	}
	if got := len(Eval(doc, MustParse("//comment()"))); got != 2 {
		t.Errorf("//comment() = %d", got)
	}
}

func TestNumericStringFunctions(t *testing.T) {
	doc, err := xmldom.ParseString(`<r><v>abc</v><v>abcdef</v><v>5</v></r>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want int
	}{
		{"//v[string-length() > 3]", 1},
		{"//v[string-length(.) = 3]", 1},
		{"//v[number(.) = 5]", 1},
		{"//v[string(.) = 'abc']", 1},
		{"//v[true()]", 3},
		{"//v[false()]", 0},
	}
	for _, c := range cases {
		if got := len(Eval(doc, MustParse(c.q))); got != c.want {
			t.Errorf("%s = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestPredicateChaining(t *testing.T) {
	doc, err := xmldom.ParseString(`<r><a k="x">1</a><a k="x">2</a><a k="y">3</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Predicates apply left to right: filter by @k, then position.
	nodes := Eval(doc, MustParse(`/r/a[@k='x'][2]`))
	if len(nodes) != 1 || nodes[0].Text() != "2" {
		t.Fatalf("[@k][2] = %v", texts(nodes))
	}
	// The reverse order means: second a overall, which has k=x.
	nodes = Eval(doc, MustParse(`/r/a[2][@k='x']`))
	if len(nodes) != 1 || nodes[0].Text() != "2" {
		t.Fatalf("[2][@k] = %v", texts(nodes))
	}
	nodes = Eval(doc, MustParse(`/r/a[3][@k='x']`))
	if len(nodes) != 0 {
		t.Fatalf("[3][@k='x'] = %v", texts(nodes))
	}
}

func texts(ns []*xmldom.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Text()
	}
	return out
}

func TestAttributeWildcard(t *testing.T) {
	doc, err := xmldom.ParseString(`<r a="1" b="2"><c d="3"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Eval(doc, MustParse("/r/@*"))); got != 2 {
		t.Errorf("/r/@* = %d", got)
	}
	if got := len(Eval(doc, MustParse("//@*"))); got != 3 {
		t.Errorf("//@* = %d", got)
	}
	if got := len(Eval(doc, MustParse("/r/attribute::a"))); got != 1 {
		t.Errorf("attribute::a = %d", got)
	}
}
