package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

type xpParser struct {
	src string
	pos int
}

func (p *xpParser) errf(format string, args ...any) error {
	return fmt.Errorf("xpath: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

// Parse parses an XPath expression of the supported subset.
func Parse(src string) (*Path, error) {
	p := &xpParser{src: src}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected trailing input %q", p.src[p.pos:])
	}
	return path, nil
}

// MustParse parses or panics; for tests and fixed workload tables.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *xpParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

func (p *xpParser) hasPrefix(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *xpParser) accept(s string) bool {
	if p.hasPrefix(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func isNameStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r >= 0x80
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || r == ':' || (r >= '0' && r <= '9')
}

func (p *xpParser) peekName() string {
	pos := p.pos
	r, size := utf8.DecodeRuneInString(p.src[pos:])
	if !isNameStart(r) {
		return ""
	}
	pos += size
	for pos < len(p.src) {
		r, size = utf8.DecodeRuneInString(p.src[pos:])
		if !isNameChar(r) {
			break
		}
		// "::" is the axis separator, never part of a QName.
		if r == ':' && pos+1 < len(p.src) && p.src[pos+1] == ':' {
			break
		}
		pos += size
	}
	return p.src[p.pos:pos]
}

func (p *xpParser) parsePath() (*Path, error) {
	p.skipWS()
	path := &Path{}
	switch {
	case p.accept("//"):
		path.Absolute = true
		if p.hasPrefix("@") {
			// //@x expands to descendant-or-self::node()/attribute::x.
			path.Steps = append(path.Steps, Step{Axis: AxisDescendant, Test: NodeTest{Kind: TestNode}})
			step, err := p.parseStep(false)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
			break
		}
		step, err := p.parseStep(true)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	case p.accept("/"):
		path.Absolute = true
		p.skipWS()
		if p.pos == len(p.src) {
			return path, nil // bare "/"
		}
		step, err := p.parseStep(false)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	default:
		step, err := p.parseStep(false)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
	for {
		p.skipWS()
		switch {
		case p.accept("//"):
			if p.hasPrefix("@") {
				path.Steps = append(path.Steps, Step{Axis: AxisDescendant, Test: NodeTest{Kind: TestNode}})
				step, err := p.parseStep(false)
				if err != nil {
					return nil, err
				}
				path.Steps = append(path.Steps, step)
				continue
			}
			step, err := p.parseStep(true)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
		case p.accept("/"):
			step, err := p.parseStep(false)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
		default:
			return path, nil
		}
	}
}

// parseStep parses one location step. descendant toggles the // form:
// the step's default axis becomes descendant instead of child.
func (p *xpParser) parseStep(descendant bool) (Step, error) {
	p.skipWS()
	step := Step{Axis: AxisChild}
	if descendant {
		step.Axis = AxisDescendant
	}

	switch {
	case p.accept(".."):
		step.Axis = AxisParent
		step.Test = NodeTest{Kind: TestNode}
		return p.parsePreds(step)
	case p.accept("."):
		step.Axis = AxisSelf
		step.Test = NodeTest{Kind: TestNode}
		return p.parsePreds(step)
	case p.accept("@"):
		step.Axis = AxisAttribute
	}

	// Explicit axis?
	if step.Axis != AxisAttribute {
		name := p.peekName()
		if name != "" && strings.HasPrefix(p.src[p.pos+len(name):], "::") {
			ax, err := axisByName(name)
			if err != nil {
				return step, p.errf("%v", err)
			}
			if descendant {
				return step, p.errf("cannot combine // with an explicit axis")
			}
			step.Axis = ax
			p.pos += len(name) + 2
			if step.Axis == AxisAttribute {
				// fall through to name test below
			}
		}
	}

	// Node test.
	switch {
	case p.accept("*"):
		step.Test = NodeTest{Kind: TestWildcard}
	case p.hasPrefix("text()"):
		p.pos += len("text()")
		step.Test = NodeTest{Kind: TestText}
	case p.hasPrefix("node()"):
		p.pos += len("node()")
		step.Test = NodeTest{Kind: TestNode}
	case p.hasPrefix("comment()"):
		p.pos += len("comment()")
		step.Test = NodeTest{Kind: TestComment}
	default:
		name := p.peekName()
		if name == "" {
			return step, p.errf("expected node test")
		}
		p.pos += len(name)
		step.Test = NodeTest{Kind: TestName, Name: name}
	}
	return p.parsePreds(step)
}

func axisByName(name string) (Axis, error) {
	switch name {
	case "child":
		return AxisChild, nil
	case "descendant":
		return AxisDescendant, nil
	case "descendant-or-self":
		return AxisDescendantOrSelf, nil
	case "attribute":
		return AxisAttribute, nil
	case "self":
		return AxisSelf, nil
	case "parent":
		return AxisParent, nil
	case "ancestor":
		return AxisAncestor, nil
	case "following-sibling":
		return AxisFollowingSibling, nil
	case "preceding-sibling":
		return AxisPrecedingSibling, nil
	}
	return 0, fmt.Errorf("unsupported axis %q", name)
}

func (p *xpParser) parsePreds(step Step) (Step, error) {
	for {
		p.skipWS()
		if !p.accept("[") {
			return step, nil
		}
		e, err := p.parseOr()
		if err != nil {
			return step, err
		}
		p.skipWS()
		if !p.accept("]") {
			return step, p.errf("expected ']'")
		}
		step.Preds = append(step.Preds, e)
	}
}

func (p *xpParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		if p.acceptWord("or") {
			right, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "or", L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *xpParser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		p.skipWS()
		if p.acceptWord("and") {
			right, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "and", L: left, R: right}
			continue
		}
		return left, nil
	}
}

// acceptWord consumes an identifier-like keyword only when followed by a
// non-name character (so "and" doesn't eat the path step "android").
func (p *xpParser) acceptWord(w string) bool {
	if !p.hasPrefix(w) {
		return false
	}
	rest := p.src[p.pos+len(w):]
	if rest != "" {
		r, _ := utf8.DecodeRuneInString(rest)
		if isNameChar(r) {
			return false
		}
	}
	p.pos += len(w)
	return true
}

func (p *xpParser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.accept(op) {
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *xpParser) parseOperand() (Expr, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return nil, p.errf("expected expression")
	}
	c := p.src[p.pos]
	switch {
	case c == '\'' || c == '"':
		q := c
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != q {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated string literal")
		}
		s := p.src[start:p.pos]
		p.pos++
		return &StringLit{Val: s}, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if (c < '0' || c > '9') && c != '.' {
				break
			}
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, p.errf("bad number: %v", err)
		}
		return &NumberLit{Val: f}, nil
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if !p.accept(")") {
			return nil, p.errf("expected ')'")
		}
		return e, nil
	}
	// Function call?
	name := p.peekName()
	if name != "" && !strings.Contains(name, ":") {
		after := p.src[p.pos+len(name):]
		trimmed := strings.TrimLeft(after, " \t\r\n")
		if strings.HasPrefix(trimmed, "(") && isFuncName(name) {
			p.pos += len(name)
			p.skipWS()
			p.accept("(")
			fc := &FuncCall{Name: name}
			p.skipWS()
			if !p.accept(")") {
				for {
					arg, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					p.skipWS()
					if p.accept(",") {
						continue
					}
					if p.accept(")") {
						break
					}
					return nil, p.errf("expected ',' or ')' in %s()", name)
				}
			}
			return fc, nil
		}
	}
	// Relative path operand.
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	return &PathOperand{Path: path}, nil
}

func isFuncName(name string) bool {
	switch name {
	// Note: "text" is absent so that [text() = 'x'] parses as a path
	// step, per XPath, not as a function call.
	case "position", "last", "count", "contains", "starts-with", "not",
		"true", "false", "string-length", "string", "number":
		return true
	}
	return false
}
