package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/xmlgen"
)

// R1 measures what durability costs and what recovery buys: document
// load time plain vs write-ahead logged (synced and NoSync), the WAL
// footprint, checkpoint time, and the two recovery paths — replaying
// the whole load from the log vs reopening from a checkpoint snapshot.
// Only the stateless schemes (interval, dewey) can be durable.
func runR1(w io.Writer, cfg Config) error {
	f := 0.25
	if cfg.Quick {
		f = 0.05
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	t := newTable("scheme", "load ms", "wal ms", "nosync ms", "wal KB",
		"replay ms", "ckpt ms", "snap KB", "reopen ms")

	for _, kind := range []core.SchemeKind{core.Interval, core.Dewey} {
		plain, err := timeIt(cfg, func() error {
			st, err := core.Open(kind)
			if err != nil {
				return err
			}
			return st.LoadDocument(doc)
		})
		if err != nil {
			return err
		}

		// Durable load, per-commit fsync (group-committed per document).
		var fs *sqldb.MemVFS
		var walBytes int64
		durable, err := timeIt(cfg, func() error {
			fs = sqldb.NewMemVFS()
			ds, err := core.OpenDurableVFS(kind, fs, core.Options{}, core.DurableOptions{AutoCheckpointBytes: -1})
			if err != nil {
				return err
			}
			if err := ds.LoadDocument(doc); err != nil {
				return err
			}
			walBytes = ds.Durable().WALSize()
			return ds.Close()
		})
		if err != nil {
			return err
		}

		nosync, err := timeIt(cfg, func() error {
			ds, err := core.OpenDurableVFS(kind, sqldb.NewMemVFS(), core.Options{},
				core.DurableOptions{AutoCheckpointBytes: -1, NoSync: true})
			if err != nil {
				return err
			}
			if err := ds.LoadDocument(doc); err != nil {
				return err
			}
			return ds.Close()
		})
		if err != nil {
			return err
		}

		// Recovery path 1: no checkpoint ever ran — replay the whole
		// load from the log.
		replay, err := timeIt(cfg, func() error {
			ds, err := core.OpenDurableVFS(kind, fs, core.Options{}, core.DurableOptions{AutoCheckpointBytes: -1})
			if err != nil {
				return err
			}
			return ds.Close()
		})
		if err != nil {
			return err
		}

		// Checkpoint, then recovery path 2: load the snapshot, replay
		// an empty log.
		ds, err := core.OpenDurableVFS(kind, fs, core.Options{}, core.DurableOptions{AutoCheckpointBytes: -1})
		if err != nil {
			return err
		}
		ckpt, err := timeIt(cfg, func() error { return ds.Checkpoint() })
		if err != nil {
			return err
		}
		if err := ds.Close(); err != nil {
			return err
		}
		snapBytes, err := fs.Size("snapshot.db")
		if err != nil {
			return err
		}
		reopen, err := timeIt(cfg, func() error {
			ds, err := core.OpenDurableVFS(kind, fs, core.Options{}, core.DurableOptions{AutoCheckpointBytes: -1})
			if err != nil {
				return err
			}
			return ds.Close()
		})
		if err != nil {
			return err
		}

		t.add(string(kind), ms(plain), ms(durable), ms(nosync), kb(walBytes),
			ms(replay), ms(ckpt), kb(snapBytes), ms(reopen))
	}
	t.write(w)
	fmt.Fprintln(w, "load = in-memory shred; wal = durable load (fsync per document group); replay = reopen from log alone;")
	fmt.Fprintln(w, "ckpt = snapshot + log rotation; reopen = recovery from checkpoint. In-memory VFS: costs are CPU + copy, not disk.")
	return nil
}
