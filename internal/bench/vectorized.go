package bench

import (
	"fmt"
	"io"

	"repro/internal/shred"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// V1: vectorized (batch-at-a-time) vs row-at-a-time execution.
//
// The interval-shredded XMark document is queried with the F1 mix and
// the scan/join-heavy engine queries (H1/H2), each prepared once and
// timed with the vectorized knob off and on, at DOP 1 and 4. The knob
// flips execution without recompiling plans, so both columns run the
// identical plan object; the speedup column is row time / batch time.
// Index-driven point queries legitimately report ~1x — the batch win
// concentrates where the per-row iterator and instrumentation overhead
// dominates: full scans, selective filters and hash-join probes.

func runV1(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})

	dops := []int{1, 4}
	header := []string{"query", "class"}
	for _, d := range dops {
		header = append(header, fmt.Sprintf("row dop=%d ms", d), fmt.Sprintf("vec dop=%d ms", d), fmt.Sprintf("speedup@%d", d))
	}

	s := shred.NewInterval(false)
	db, err := shred.LoadDocument(s, doc)
	if err != nil {
		return err
	}

	type q struct{ id, class, sql string }
	var queries []q
	for _, qc := range queryClasses {
		p, err := xpath.Parse(qc.Query)
		if err != nil {
			return err
		}
		sql, err := s.Translate(p)
		if err != nil {
			continue
		}
		queries = append(queries, q{qc.ID, qc.Class, sql})
	}
	queries = append(queries,
		q{"H1 scan-extract", "scan-heavy", `SELECT pre, parent, size FROM accel WHERE size > 2`},
		q{"H2 scan-agg", "scan-heavy", `SELECT kind, COUNT(*), MIN(pre), MAX(level) FROM accel WHERE size % 5 <> 1 GROUP BY kind`},
		q{"H3 hash-join", "join-heavy", `SELECT COUNT(*) FROM accel c, accel p WHERE c.parent = p.pre AND p.size > 3 AND c.level > 2`},
	)

	t := newTable(header...)
	for _, qc := range queries {
		row := []string{qc.id, qc.class}
		for _, dop := range dops {
			db.SetParallelism(dop)
			prep, err := db.Prepare(qc.sql)
			if err != nil {
				return fmt.Errorf("%s: prepare: %w", qc.id, err)
			}
			var times [2]float64
			for i, vec := range []bool{false, true} {
				db.SetVectorized(vec)
				d, err := timeIt(cfg, func() error {
					_, err := prep.Query()
					return err
				})
				if err != nil {
					return fmt.Errorf("%s (vec=%v): run: %w", qc.id, vec, err)
				}
				times[i] = float64(d.Microseconds()) / 1000.0
				row = append(row, ms(d))
			}
			if times[1] > 0 {
				row = append(row, fmt.Sprintf("%.2fx", times[0]/times[1]))
			} else {
				row = append(row, "-")
			}
		}
		t.add(row...)
	}
	db.SetVectorized(false)
	db.SetParallelism(0)
	t.write(w)
	fmt.Fprintln(w, "cells: ms per execution (prepared plan, best of repeats); speedup = row / vectorized at the same DOP")
	return nil
}
