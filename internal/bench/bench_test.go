package bench

import (
	"strings"
	"testing"
)

// TestRunAllQuick executes every experiment end-to-end at smoke scale:
// the harness itself is part of the deliverable, so it must never bitrot.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke run skipped in -short mode")
	}
	var b strings.Builder
	cfg := Config{Factor: 0.05, Seed: 7, Quick: true, Repeat: 1}
	if err := Run(&b, []string{"all"}, cfg); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, b.String())
	}
	out := b.String()
	for _, e := range All() {
		if !strings.Contains(out, "== "+e.ID+":") {
			t.Errorf("output missing experiment %s", e.ID)
		}
	}
	// Spot-check that the tables carry scheme rows.
	for _, frag := range []string{"edge", "interval", "dewey", "inline", "universal", "binary"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing scheme %s", frag)
		}
	}
}

func TestRunSelection(t *testing.T) {
	var b strings.Builder
	cfg := Config{Factor: 0.02, Seed: 7, Quick: true, Repeat: 1}
	if err := Run(&b, []string{"T2"}, cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "== T1:") || !strings.Contains(b.String(), "== T2:") {
		t.Errorf("selection not honored:\n%s", b.String())
	}
	if err := Run(&b, []string{"BOGUS"}, cfg); err == nil {
		t.Error("bogus experiment id accepted")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("col1", "longer column")
	tb.add("a", "b")
	tb.add("wider cell", "c")
	var b strings.Builder
	tb.write(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestCountTableRefs(t *testing.T) {
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT 1 FROM a WHERE x", 1},
		{"SELECT 1 FROM a, b, c WHERE x", 3},
		{"SELECT 1 FROM a WHERE EXISTS (SELECT 1 FROM b, c WHERE y)", 3},
		{"SELECT 1", 0},
	}
	for _, c := range cases {
		if got := countTableRefs(c.sql); got != c.want {
			t.Errorf("countTableRefs(%q) = %d, want %d", c.sql, got, c.want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := ms(2500000); got != "2.500" { // 2.5ms as time.Duration (ns)
		t.Errorf("ms = %q", got)
	}
	if got := kb(2048); got != "2" {
		t.Errorf("kb = %q", got)
	}
	cfg := Config{}.withDefaults()
	if cfg.Factor != 0.25 || cfg.Repeat != 3 || cfg.Seed == 0 {
		t.Errorf("defaults = %+v", cfg)
	}
}
