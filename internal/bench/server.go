package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sqldb"
	"repro/internal/xmlgen"
)

// S1: server throughput and latency vs connection count.
//
// The engine behind the network front door: an in-process xrdbd-style
// server (HTTP/JSON over a real TCP listener) serving a durable
// interval store, hammered by N concurrent connections each looping
// the F1 query mix. The table reports sustained QPS and p50/p99
// per-request latency per connection count. Two shapes matter: QPS
// should scale with connections until the query cores saturate (on a
// single-core runner it flattens immediately — the sweep then measures
// queueing fairness, not speedup), and p99 should grow roughly
// linearly with connections once saturated rather than collapsing,
// since every request is admission-gated and snapshot-isolated rather
// than lock-coupled.

func runS1(w io.Writer, cfg Config) error {
	f := cfg.Factor
	window := 600 * time.Millisecond
	conns := []int{1, 4, 16, 64}
	if cfg.Quick {
		f = 0.05
		window = 150 * time.Millisecond
		conns = []int{1, 8}
	}

	store, err := core.OpenDurableVFS(core.Interval, sqldb.NewMemVFS(), core.Options{}, core.DurableOptions{})
	if err != nil {
		return err
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	if err := store.LoadDocument(doc); err != nil {
		store.Close()
		return err
	}
	srv := server.New(store, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	queries := make([][]byte, len(queryClasses))
	for i, qc := range queryClasses {
		body, err := json.Marshal(server.QueryRequest{XPath: qc.Query})
		if err != nil {
			return err
		}
		queries[i] = body
	}

	t := newTable("conns", "requests", "QPS", "p50 ms", "p99 ms")
	for _, n := range conns {
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        n,
			MaxIdleConnsPerHost: n,
		}}
		var mu sync.Mutex
		var lats []time.Duration
		var firstErr error
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var local []time.Duration
				for i := c; time.Since(start) < window; i++ {
					t0 := time.Now()
					resp, err := client.Post(base+"/query", "application/json",
						bytes.NewReader(queries[i%len(queries)]))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != 200 {
							err = fmt.Errorf("status %d", resp.StatusCode)
						}
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		client.CloseIdleConnections()
		if firstErr != nil {
			return fmt.Errorf("S1 (%d conns): %w", n, firstErr)
		}
		if len(lats) == 0 {
			return fmt.Errorf("S1 (%d conns): no requests completed in the window", n)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		t.add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(lats)),
			fmt.Sprintf("%.0f", float64(len(lats))/elapsed.Seconds()),
			ms(lats[len(lats)/2]), ms(lats[len(lats)*99/100]))
	}
	t.write(w)
	fmt.Fprintln(w, "F1 query mix over HTTP/JSON against an in-process durable interval store; latency includes transport")
	return nil
}
