package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/xmlgen"
)

// ---------------------------------------------------------------------------
// D1: bounded-memory load + query mix, capped buffer pool vs unbounded

// d1Factor is the XMark scale for D1. The experiment only means
// something when the shredded document dwarfs the page cap, so it
// ignores cfg.Factor and fixes a large scale (~1.5M nodes at 5.0);
// Quick shrinks it for smoke runs.
func d1Factor(cfg Config) float64 {
	if cfg.Quick {
		return 0.2
	}
	return 5.0
}

// heapMiB forces a GC and reports in-use heap in MiB — the process
// peak (VmHWM) is useless here because the capped and unbounded
// configurations run in the same process and the counter never drops.
func heapMiB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapInuse) / (1 << 20)
}

// runD1 streams one large XMark document into an interval store twice —
// once with a 64-page buffer pool (resident rows capped at 64×512,
// everything else spilled to a temp file and paged back on demand) and
// once unbounded — then replays the F1 query mix against each. Reported
// per configuration: load and mix wall time, in-use heap after load and
// after the mix, and the pool counters (hit rate, spills, evictions,
// writebacks). The capped configuration runs first so its heap numbers
// are not inflated by the unbounded store's allocations.
//
// The load path is Store.LoadXMLStream: a streaming parse + SAX-style
// shred that never materializes the DOM, so the capped configuration's
// footprint is the pool plus shred batches — not the document.
func runD1(w io.Writer, cfg Config) error {
	f := d1Factor(cfg)
	fmt.Fprintf(w, "XMark factor %g, streaming shred into interval scheme; heap = HeapInuse after GC (MiB).\n", f)

	// One serialized document shared by both configurations. (The
	// generator builds a DOM to serialize it, so generation itself
	// spikes — the measured configurations below never do.)
	xml := xmlgen.AuctionXML(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	fmt.Fprintf(w, "document: %.1f MiB of XML text\n\n", float64(len(xml))/(1<<20))

	configs := []struct {
		name  string
		pages int
	}{
		{"64-page pool", 64},
		{"unbounded", 0},
	}
	t := newTable("pool", "load ms", "mix ms", "heap@load", "heap@mix",
		"hits", "misses", "hit%", "spilled", "evicted", "writebacks")
	for _, c := range configs {
		st, err := core.OpenWith(core.Interval, core.Options{BufferPoolPages: c.pages})
		if err != nil {
			return err
		}
		loadT, err := timeIt(Config{Repeat: 1}, func() error {
			return st.LoadXMLStream(context.Background(), strings.NewReader(xml))
		})
		if err != nil {
			return fmt.Errorf("%s: load: %w", c.name, err)
		}
		loadHeap := heapMiB()

		mixT, err := timeIt(cfg, func() error {
			for _, qc := range queryClasses {
				if _, err := st.Query(qc.Query); err != nil {
					return fmt.Errorf("%s: %w", qc.ID, err)
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s: mix: %w", c.name, err)
		}
		mixHeap := heapMiB()

		bp := st.DB().Stats().BufferPool
		hitPct := "n/a"
		if bp.Hits+bp.Misses > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*float64(bp.Hits)/float64(bp.Hits+bp.Misses))
		}
		t.add(c.name, ms(loadT), ms(mixT),
			fmt.Sprintf("%.1f", loadHeap), fmt.Sprintf("%.1f", mixHeap),
			fmt.Sprint(bp.Hits), fmt.Sprint(bp.Misses), hitPct,
			fmt.Sprint(bp.Spilled), fmt.Sprint(bp.Evictions), fmt.Sprint(bp.Writebacks))
		if bp.ReadErrors != 0 || bp.SpillErrors != 0 {
			return fmt.Errorf("%s: pool IO errors: %+v", c.name, bp)
		}
	}
	t.write(w)
	return nil
}
