package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/xmlgen"
)

// The F1 query mix (see queryClasses) replayed against one store — the
// repeated-template workload the two-tier cache exists for. "cached"
// serves XPath→SQL translations and compiled plans from the caches;
// "uncached" disables both, paying XPath parse + SQL generation + SQL
// parse + join-order sampling on every execution.

// cacheBenchQuery is Q3 of the F1 mix (value select): selective enough
// that execution does not drown out compile cost, representative of the
// path-template queries that dominate XML workloads.
const cacheBenchQuery = `/site/people/person[address/city='Berlin']/name`

func newCacheBenchStore(b *testing.B) *core.Store {
	b.Helper()
	st, err := core.Open(core.Interval)
	if err != nil {
		b.Fatal(err)
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 42})
	if err := st.LoadDocument(doc); err != nil {
		b.Fatal(err)
	}
	return st
}

func runQuery(b *testing.B, st *core.Store, q string) {
	b.Helper()
	if _, err := st.Query(q); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkQueryCache(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		st := newCacheBenchStore(b)
		runQuery(b, st, cacheBenchQuery) // warm the caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, st, cacheBenchQuery)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		st := newCacheBenchStore(b)
		st.SetTranslationCacheCapacity(0)
		st.DB().SetPlanCacheCapacity(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, st, cacheBenchQuery)
		}
	})
	b.Run("mix/cached", func(b *testing.B) {
		st := newCacheBenchStore(b)
		for _, qc := range queryClasses {
			runQuery(b, st, qc.Query)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, st, queryClasses[i%len(queryClasses)].Query)
		}
	})
	b.Run("mix/uncached", func(b *testing.B) {
		st := newCacheBenchStore(b)
		st.SetTranslationCacheCapacity(0)
		st.DB().SetPlanCacheCapacity(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, st, queryClasses[i%len(queryClasses)].Query)
		}
	})
}

// TestQueryCacheSpeedup pins the benchmark's claim in the regular test
// suite: repeated execution with the caches on must beat the full
// parse+translate+plan path by a wide margin (observed ~8× on Q3; the
// assertion uses 3× headroom against noisy CI machines).
func TestQueryCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	st, err := core.Open(core.Interval)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadDocument(xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 42})); err != nil {
		t.Fatal(err)
	}
	const iters = 20
	run := func() time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := st.Query(cacheBenchQuery); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	if _, err := st.Query(cacheBenchQuery); err != nil { // warm
		t.Fatal(err)
	}
	cached := run()
	st.SetTranslationCacheCapacity(0)
	st.DB().SetPlanCacheCapacity(0)
	uncached := run()
	ratio := float64(uncached) / float64(cached)
	t.Logf("cached %v, uncached %v: %.1fx", cached, uncached, ratio)
	if ratio < 3 {
		t.Errorf("cache speedup %.1fx below 3x (cached %v, uncached %v)", ratio, cached, uncached)
	}
}
