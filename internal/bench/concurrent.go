package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/shred"
	"repro/internal/xmldom"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// C1: reader throughput and latency under concurrent ordered inserts.
//
// The snapshot-isolation claim made concrete: with versioned tables and
// lock-free readers, a query never waits for a writer — it pins the
// latest published version set and runs against it while the writer
// renumbers, relabels and publishes new versions. The experiment runs a
// fixed reader pool twice per scheme — once against an idle store, once
// while a writer loops ordered subtree insertions — and reports
// throughput plus the p50/p99 latency shift. Under the seed engine's
// single RWMutex, the contended p99 tracked the writer's full insert
// time (document-wide renumbering for interval); under snapshots it
// should stay within small factors of idle. Interval is the heavy-write
// case (every insert rewrites the region encoding), dewey the
// light-write case (local relabel).

func runC1(w io.Writer, cfg Config) error {
	f := cfg.Factor
	window := 600 * time.Millisecond
	if cfg.Quick {
		f = 0.05
		window = 150 * time.Millisecond
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	const readers = 2
	readerQuery := "//item/name"

	t := newTable("scheme", "writer", "reads", "reads/s", "p50 ms", "p99 ms", "inserts/s")
	for _, name := range []string{"interval", "dewey"} {
		s, err := remakeByName(name)
		if err != nil {
			return err
		}
		db, err := shred.LoadDocument(s, doc)
		if err != nil {
			return err
		}
		sql, err := s.Translate(xpath.MustParse(readerQuery))
		if err != nil {
			return err
		}
		oas := xpath.Eval(doc, xpath.MustParse("/site/open_auctions"))
		if len(oas) != 1 {
			return fmt.Errorf("expected one open_auctions element")
		}
		parentID := int64(oas[0].Pre)
		nChildren := len(oas[0].Children)

		for _, withWriter := range []bool{false, true} {
			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			inserts := 0
			if withWriter {
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					rng := xmlgen.NewRNG(cfg.Seed)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						frag, err := xmldom.ParseString(fmt.Sprintf(insertFragment, i))
						if err != nil {
							return
						}
						pos := rng.Intn(nChildren + inserts)
						if err := s.InsertSubtree(db, parentID, pos, frag.RootElement().Copy()); err != nil {
							return // e.g. dewey label-gap exhaustion: stop writing, readers continue
						}
						inserts++
					}
				}()
			}

			var mu sync.Mutex
			var lats []time.Duration
			var readerWG sync.WaitGroup
			var readErr error
			start := time.Now()
			for r := 0; r < readers; r++ {
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					var local []time.Duration
					for time.Since(start) < window {
						t0 := time.Now()
						if _, err := db.Query(sql); err != nil {
							mu.Lock()
							readErr = err
							mu.Unlock()
							return
						}
						local = append(local, time.Since(t0))
					}
					mu.Lock()
					lats = append(lats, local...)
					mu.Unlock()
				}()
			}
			readerWG.Wait()
			elapsed := time.Since(start)
			close(stop)
			writerWG.Wait()
			if readErr != nil {
				return fmt.Errorf("C1 reader (%s): %w", name, readErr)
			}
			if len(lats) == 0 {
				return fmt.Errorf("C1 (%s): no reads completed in the window", name)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p50 := lats[len(lats)/2]
			p99 := lats[len(lats)*99/100]
			mode := "idle"
			ips := "-"
			if withWriter {
				mode = "inserting"
				ips = fmt.Sprintf("%.0f", float64(inserts)/elapsed.Seconds())
			}
			t.add(name, mode, fmt.Sprintf("%d", len(lats)),
				fmt.Sprintf("%.0f", float64(len(lats))/elapsed.Seconds()),
				ms(p50), ms(p99), ips)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "readers pin a snapshot per query and never block on the writer; contended p99 near idle is the win;")
	fmt.Fprintln(w, "on a single-core host reader and writer still timeshare one CPU, so some contended slowdown is scheduling, not locking")
	return nil
}
