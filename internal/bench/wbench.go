package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/sqldb"
)

// W1: multi-writer insert throughput under the WAL group-commit
// pipeline.
//
// A single writer pays one fsync per commit — the PR 5 baseline, where
// the commit path held the write lock across the fsync and writers
// could never overlap. The pipeline stages a commit's WAL frame, drops
// the write lock, and lets the first waiter flush every queued frame
// with one Write + one Sync, so concurrent writers share fsyncs:
// fsyncs/commit falls below one and throughput rises past the
// single-writer fsync rate. The experiment runs a fixed insert total
// split across 1, 4 and 16 writers against a real on-disk directory
// (fsync must cost something for batching to show), plus a 16-writer
// run with a small group-commit window, and reports the pipeline
// counters alongside throughput.
func runW1(w io.Writer, cfg Config) error {
	total := 480
	if cfg.Quick {
		total = 64
	}

	type run struct {
		writers int
		window  time.Duration
	}
	runs := []run{{1, 0}, {4, 0}, {16, 0}, {16, 200 * time.Microsecond}}

	t := newTable("writers", "window", "commits", "fsyncs", "fsync/commit", "max batch", "inserts/s")
	var baseline float64
	for _, r := range runs {
		dir, err := os.MkdirTemp("", "xrdb-w1-")
		if err != nil {
			return err
		}
		fs, err := sqldb.NewOSVFS(dir)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		d, err := sqldb.OpenDurable(fs, sqldb.DurableOptions{
			AutoCheckpointBytes: -1,
			GroupCommitWindow:   r.window,
		})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		db := d.DB()
		db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, w INTEGER, v TEXT)`)
		setup := d.Stats() // exclude the DDL commit from the measured window

		per := total / r.writers
		var wg sync.WaitGroup
		errs := make([]error, r.writers)
		start := time.Now()
		for wr := 0; wr < r.writers; wr++ {
			wg.Add(1)
			go func(wr int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					k := int64(wr*1_000_000 + i)
					if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?, 'payload')`,
						sqldb.NewInt(k), sqldb.NewInt(int64(wr))); err != nil {
						errs[wr] = err
						return
					}
				}
			}(wr)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := d.Stats()
		closeErr := d.Close()
		os.RemoveAll(dir)
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("W1 writer: %w", err)
			}
		}
		if closeErr != nil {
			return fmt.Errorf("W1 close: %w", closeErr)
		}

		commits := st.Commits - setup.Commits
		fsyncs := st.Fsyncs - setup.Fsyncs
		ips := float64(per*r.writers) / elapsed.Seconds()
		if r.writers == 1 && r.window == 0 {
			baseline = ips
		}
		window := "-"
		if r.window > 0 {
			window = fmt.Sprintf("%.1fms", float64(r.window)/float64(time.Millisecond))
		}
		t.add(fmt.Sprintf("%d", r.writers), window,
			fmt.Sprintf("%d", commits), fmt.Sprintf("%d", fsyncs),
			fmt.Sprintf("%.2f", float64(fsyncs)/float64(commits)),
			fmt.Sprintf("%d", st.MaxBatch), fmt.Sprintf("%.0f", ips))
	}
	t.write(w)
	fmt.Fprintf(w, "single writer = the serial baseline (one fsync per commit, inserts/s %.0f);\n", baseline)
	fmt.Fprintln(w, "concurrent writers share batch fsyncs, so fsync/commit < 1 and throughput rises with the writer count;")
	fmt.Fprintln(w, "on a single-core host writers timeshare one CPU — the fsync amortization is real, the CPU overlap is not")
	return nil
}
