package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/xmlgen"
)

// G1 measures what the resource governor costs and what fail-safe
// execution buys: heavy-query latency with memory accounting off vs
// on, how fast an over-budget query is refused, a concurrent
// point-query storm ungated vs through the admission gate, and the
// degrade → Recover round trip after an ENOSPC fault.
func runG1(w io.Writer, cfg Config) error {
	f := 0.25
	if cfg.Quick {
		f = 0.05
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})

	st, err := core.Open(core.Interval)
	if err != nil {
		return err
	}
	if err := st.LoadDocument(doc); err != nil {
		return err
	}
	db := st.DB()
	const heavy = `SELECT pre, name, value FROM accel ORDER BY value, pre`

	// Accounting overhead: the same sort ungoverned vs charged against
	// a budget it never hits.
	base, err := timeIt(cfg, func() error {
		_, err := db.Query(heavy)
		return err
	})
	if err != nil {
		return err
	}
	db.SetMemoryBudget(1 << 30)
	db.SetQueryMemoryLimit(1 << 30)
	metered, err := timeIt(cfg, func() error {
		_, err := db.Query(heavy)
		return err
	})
	if err != nil {
		return err
	}

	// Fail-fast: how long an over-budget query takes to be refused.
	db.SetQueryMemoryLimit(64 << 10)
	abort, err := timeIt(cfg, func() error {
		if _, err := db.Query(heavy); !errors.Is(err, sqldb.ErrMemoryBudgetExceeded) {
			return fmt.Errorf("over-budget query returned %v", err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	db.SetQueryMemoryLimit(0)
	db.SetMemoryBudget(0)

	// Admission gate: a storm of indexed point queries from 8
	// goroutines, ungated vs squeezed through 2 slots + queue.
	storm := func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 64; i++ {
					if _, err := db.Query(`SELECT value FROM accel WHERE pre = ?`,
						sqldb.NewInt(int64(g*64+i))); err != nil {
						errCh <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	}
	ungated, err := timeIt(cfg, storm)
	if err != nil {
		return err
	}
	db.SetAdmissionControl(2, 8)
	gated, err := timeIt(cfg, storm)
	if err != nil {
		return err
	}

	// Degraded mode: fill the disk under a durable store, then measure
	// the Recover round trip (rebuild acked state from disk, checkpoint
	// it, restart the WAL).
	fvfs := sqldb.NewFaultVFS(sqldb.NewMemVFS(), -1)
	fvfs.SetFailError(syscall.ENOSPC)
	ds, err := core.OpenDurableVFS(core.Interval, fvfs, core.Options{},
		core.DurableOptions{AutoCheckpointBytes: -1})
	if err != nil {
		return err
	}
	if err := ds.LoadDocument(doc); err != nil {
		return err
	}
	fvfs.SetFailAfter(fvfs.Written())
	if _, err := ds.Exec(`CREATE TABLE g1_probe (x INTEGER)`); err == nil {
		return fmt.Errorf("full disk did not fail the commit")
	}
	if !ds.Durable().Failed() {
		return fmt.Errorf("full disk did not degrade the engine")
	}
	fvfs.Heal()
	recoverStart := time.Now()
	if err := ds.Recover(); err != nil {
		return err
	}
	recoverMs := time.Since(recoverStart)
	if err := ds.Close(); err != nil {
		return err
	}

	t := newTable("scheme", "base ms", "metered ms", "abort ms", "ungated ms", "gated ms", "recover ms")
	t.add("interval", ms(base), ms(metered), ms(abort), ms(ungated), ms(gated), ms(recoverMs))
	t.write(w)
	fmt.Fprintln(w, "base/metered = full sort without/with memory accounting; abort = refusing the same sort under a 64 KiB limit;")
	fmt.Fprintln(w, "ungated/gated = 8x64 point queries, free vs 2 admission slots; recover = degrade->Recover after ENOSPC (rebuild + checkpoint).")
	return nil
}
