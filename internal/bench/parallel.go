package bench

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/shred"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// Q1: morsel-parallel speedup on the F1 query mix.
//
// The document is loaded once per scheme; the engine's
// degree-of-parallelism knob is then swept (1, 2, 4, NumCPU) and every
// F1 query re-prepared at each setting — SetParallelism bumps the plan
// epoch, so prepared plans recompile with the parallel decoration — and
// timed. Cells report milliseconds; the final columns report the
// speedup of the widest setting over serial. Queries whose plans have
// no morsel-parallelizable segment (index-scan driven, or below the
// row threshold) legitimately report ~1x.

func runQ1(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})

	dops := []int{1, 2, 4}
	maxDop := runtime.GOMAXPROCS(0)
	if maxDop > 4 {
		dops = append(dops, maxDop)
	}

	schemes := []shred.Scheme{shred.NewEdge(false), shred.NewInterval(false)}
	header := []string{"scheme", "query", "class"}
	for _, d := range dops {
		header = append(header, fmt.Sprintf("dop=%d ms", d))
	}
	header = append(header, "speedup")
	t := newTable(header...)

	for _, s := range schemes {
		db, err := shred.LoadDocument(s, doc)
		if err != nil {
			return err
		}
		for _, qc := range queryClasses {
			p, err := xpath.Parse(qc.Query)
			if err != nil {
				return err
			}
			sql, err := s.Translate(p)
			if err != nil {
				continue // scheme cannot express this class
			}
			row := []string{s.Name(), qc.ID, qc.Class}
			times := make(map[int]float64)
			for _, dop := range dops {
				db.SetParallelism(dop)
				prep, err := db.Prepare(sql)
				if err != nil {
					return fmt.Errorf("%s/%s: prepare: %w", s.Name(), qc.ID, err)
				}
				d, err := timeIt(cfg, func() error {
					_, err := prep.Query()
					return err
				})
				if err != nil {
					return fmt.Errorf("%s/%s: run: %w", s.Name(), qc.ID, err)
				}
				times[dop] = float64(d.Microseconds()) / 1000.0
				row = append(row, ms(d))
			}
			wide := dops[len(dops)-1]
			if times[wide] > 0 {
				row = append(row, fmt.Sprintf("%.2fx", times[1]/times[wide]))
			} else {
				row = append(row, "-")
			}
			t.add(row...)
		}
		db.SetParallelism(0)
	}
	t.write(w)
	fmt.Fprintln(w, "cells: ms per execution (prepared plan, best of repeats); speedup = dop1 / widest dop")

	// Scan/join-heavy engine-level queries over the shredded relations:
	// the F1 mix is dominated by index-friendly path steps, so the raw
	// parallel headroom is shown on full-scan aggregations and joins
	// against the interval relation as well.
	db, err := shred.LoadDocument(shred.NewInterval(false), doc)
	if err != nil {
		return err
	}
	heavy := []struct{ id, sql string }{
		{"H1 scan-agg", `SELECT kind, COUNT(*), MIN(pre), MAX(level) FROM accel WHERE size % 5 <> 1 GROUP BY kind`},
		{"H2 hash-join", `SELECT COUNT(*) FROM accel c, accel p WHERE c.parent = p.pre AND p.size > 3 AND c.level > 2`},
	}
	ht := newTable(append([]string{"query"}, header[3:]...)...)
	for _, q := range heavy {
		row := []string{q.id}
		times := make(map[int]float64)
		for _, dop := range dops {
			db.SetParallelism(dop)
			prep, err := db.Prepare(q.sql)
			if err != nil {
				return fmt.Errorf("%s: prepare: %w", q.id, err)
			}
			d, err := timeIt(cfg, func() error {
				_, err := prep.Query()
				return err
			})
			if err != nil {
				return fmt.Errorf("%s: run: %w", q.id, err)
			}
			times[dop] = float64(d.Microseconds()) / 1000.0
			row = append(row, ms(d))
		}
		wide := dops[len(dops)-1]
		row = append(row, fmt.Sprintf("%.2fx", times[1]/times[wide]))
		ht.add(row...)
	}
	ht.write(w)
	return nil
}
