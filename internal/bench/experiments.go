package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/shred"
	"repro/internal/sqldb"
	"repro/internal/xmldom"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// The canonical query mix (the classes the F&K/Shanmugasundaram
// evaluations sweep): short path, descendant, value selection, twig,
// positional, attribute-value selection.
var queryClasses = []struct {
	ID    string
	Class string
	Query string
}{
	{"Q1", "short path", "/site/categories/category/name"},
	{"Q2", "descendant", "//item/name"},
	{"Q3", "value select", "/site/people/person[address/city='Berlin']/name"},
	{"Q4", "twig", "//open_auction[initial > 200]/bidder/increase"},
	{"Q5", "positional", "/site/open_auctions/open_auction/bidder[1]/increase"},
	{"Q6", "attr value", "//person[profile/@income > 60000]"},
}

// allSchemes returns every scheme including Inline (which needs the
// auction DTD).
func allSchemes(valueIndex bool) ([]shred.Scheme, error) {
	schemes := shred.All(valueIndex)
	inline, err := shred.NewInline(xmlgen.AuctionDTD, "site")
	if err != nil {
		return nil, err
	}
	return append(schemes, inline), nil
}

// ---------------------------------------------------------------------------
// T1: database size

func runT1(w io.Writer, cfg Config) error {
	factors := []float64{0.25, 0.5, 1}
	if cfg.Quick {
		factors = []float64{0.1, 0.25}
	}
	t := newTable("factor", "scheme", "tables", "rows", "KB", "vs XML text")
	for _, f := range factors {
		doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
		xmlBytes := int64(len(xmldom.SerializeString(doc.Root)))
		schemes, err := allSchemes(false)
		if err != nil {
			return err
		}
		for _, s := range schemes {
			db, err := shred.LoadDocument(s, doc)
			if err != nil {
				return err
			}
			rows := db.TotalRows()
			bytes := db.TotalBytes()
			t.add(fmt.Sprintf("%.2f", f), s.Name(),
				fmt.Sprintf("%d", len(db.TableNames())),
				fmt.Sprintf("%d", rows), kb(bytes),
				fmt.Sprintf("%.2fx", float64(bytes)/float64(xmlBytes)))
		}
		t.add(fmt.Sprintf("%.2f", f), "(xml text)", "-", fmt.Sprintf("%d nodes", doc.NodeCount()), kb(xmlBytes), "1.00x")
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------------
// T2: load time

func runT2(w io.Writer, cfg Config) error {
	f := 0.5
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	t := newTable("scheme", "load ms", "rows", "rows/ms")
	schemes, err := allSchemes(false)
	if err != nil {
		return err
	}
	for _, s := range schemes {
		var db *sqldb.Database
		d, err := timeIt(cfg, func() error {
			fresh, err := remakeScheme(s)
			if err != nil {
				return err
			}
			db, err = shred.LoadDocument(fresh, doc)
			return err
		})
		if err != nil {
			return err
		}
		rows := db.TotalRows()
		t.add(s.Name(), ms(d), fmt.Sprintf("%d", rows),
			fmt.Sprintf("%.0f", float64(rows)/(float64(d.Microseconds())/1000+0.001)))
	}
	t.write(w)
	return nil
}

// remakeScheme returns a fresh instance of the same scheme kind (schemes
// hold per-load state such as path catalogs).
func remakeScheme(s shred.Scheme) (shred.Scheme, error) {
	switch s.Name() {
	case "edge":
		return shred.NewEdge(false), nil
	case "binary":
		return shred.NewBinary(false), nil
	case "universal":
		return shred.NewUniversal(), nil
	case "interval":
		return shred.NewInterval(false), nil
	case "dewey":
		return shred.NewDewey(false), nil
	case "inline":
		return shred.NewInline(xmlgen.AuctionDTD, "site")
	}
	return nil, fmt.Errorf("bench: unknown scheme %s", s.Name())
}

// ---------------------------------------------------------------------------
// F1: query classes

func runF1(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	schemes, err := allSchemes(false)
	if err != nil {
		return err
	}
	t := newTable(append([]string{"query", "class", "results"},
		schemeNames(schemes)...)...)
	type loaded struct {
		s  shred.Scheme
		db *sqldb.Database
	}
	var ls []loaded
	for _, s := range schemes {
		db, err := shred.LoadDocument(s, doc)
		if err != nil {
			return err
		}
		ls = append(ls, loaded{s: s, db: db})
	}
	for _, qc := range queryClasses {
		nResults := len(xpath.Eval(doc, xpath.MustParse(qc.Query)))
		row := []string{qc.ID, qc.Class, fmt.Sprintf("%d", nResults)}
		for _, l := range ls {
			cell, err := timeQuery(cfg, l.db, l.s, qc.Query)
			if err != nil {
				return err
			}
			row = append(row, cell)
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "cells: ms per execution (prepared plan, best of repeats); n/a = scheme cannot translate")
	return nil
}

func schemeNames(schemes []shred.Scheme) []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.Name() + " ms"
	}
	return out
}

// timeQuery translates, prepares and times one query; unsupported
// translations report "n/a".
func timeQuery(cfg Config, db *sqldb.Database, s shred.Scheme, query string) (string, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return "", err
	}
	sql, err := s.Translate(p)
	if err != nil {
		return "n/a", nil
	}
	prep, err := db.Prepare(sql)
	if err != nil {
		return "", fmt.Errorf("%s: preparing %q: %w", s.Name(), query, err)
	}
	d, err := timeIt(cfg, func() error {
		_, err := prep.Query()
		return err
	})
	if err != nil {
		return "", fmt.Errorf("%s: running %q: %w", s.Name(), query, err)
	}
	return ms(d), nil
}

// ---------------------------------------------------------------------------
// P1: per-operator runtime profile

// runP1 executes the F1 query mix under EXPLAIN ANALYZE on every scheme
// and reports the executed result cardinality and wall time per cell —
// a differential check (cardinalities must agree across schemes
// wherever the query is expressible) and a per-operator cost profile.
// One full annotated plan is printed as an exemplar.
func runP1(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.05
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	schemes, err := allSchemes(false)
	if err != nil {
		return err
	}
	t := newTable(append([]string{"query", "dom results"}, schemeNames(schemes)...)...)
	type loaded struct {
		s  shred.Scheme
		db *sqldb.Database
	}
	var ls []loaded
	for _, s := range schemes {
		db, err := shred.LoadDocument(s, doc)
		if err != nil {
			return err
		}
		ls = append(ls, loaded{s: s, db: db})
	}
	var exemplar string
	for _, qc := range queryClasses {
		nResults := len(xpath.Eval(doc, xpath.MustParse(qc.Query)))
		row := []string{qc.ID, fmt.Sprintf("%d", nResults)}
		for _, l := range ls {
			p, err := xpath.Parse(qc.Query)
			if err != nil {
				return err
			}
			sql, err := l.s.Translate(p)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			ap, err := l.db.ExplainAnalyzePlan(sql)
			if err != nil {
				return fmt.Errorf("%s: analyzing %q: %w", l.s.Name(), qc.Query, err)
			}
			row = append(row, fmt.Sprintf("%d in %s", ap.Rows, ms(ap.Duration)))
			if qc.ID == "Q4" && l.s.Name() == "interval" {
				exemplar = ap.Text
			}
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "cells: executed rows in ms (EXPLAIN ANALYZE); n/a = scheme cannot translate")
	if exemplar != "" {
		fmt.Fprintln(w, "\nexemplar (interval, Q4 twig):")
		fmt.Fprint(w, exemplar)
	}
	return nil
}

// ---------------------------------------------------------------------------
// F2: descendant cost vs depth

func runF2(w io.Writer, cfg Config) error {
	depths := []int{4, 6, 8, 10, 12}
	chains := 300
	if cfg.Quick {
		depths = []int{4, 6, 8}
		chains = 100
	}
	t := newTable("depth", "nodes", "edge ms", "interval ms", "dewey ms", "edge/interval")
	for _, depth := range depths {
		doc := xmlgen.Deep(depth, chains, cfg.Seed)
		var cells []string
		var edgeT, ivT time.Duration
		for _, s := range []shred.Scheme{shred.NewEdge(false), shred.NewInterval(false), shred.NewDewey(false)} {
			db, err := shred.LoadDocument(s, doc)
			if err != nil {
				return err
			}
			p := xpath.MustParse("//leaf")
			sql, err := s.Translate(p)
			if err != nil {
				return err
			}
			prep, err := db.Prepare(sql)
			if err != nil {
				return err
			}
			d, err := timeIt(cfg, func() error {
				rows, err := prep.Query()
				if err != nil {
					return err
				}
				if rows.Len() != chains {
					return fmt.Errorf("%s returned %d leaves, want %d", s.Name(), rows.Len(), chains)
				}
				return nil
			})
			if err != nil {
				return err
			}
			switch s.Name() {
			case "edge":
				edgeT = d
			case "interval":
				ivT = d
			}
			cells = append(cells, ms(d))
		}
		ratio := float64(edgeT) / float64(ivT+1)
		t.add(fmt.Sprintf("%d", depth), fmt.Sprintf("%d", doc.NodeCount()),
			cells[0], cells[1], cells[2], fmt.Sprintf("%.1fx", ratio))
	}
	t.write(w)
	fmt.Fprintln(w, "expected shape: interval flat in depth; edge grows with expansion length")
	return nil
}

// ---------------------------------------------------------------------------
// T3: reconstruction

func runT3(w io.Writer, cfg Config) error {
	f := 0.25
	if cfg.Quick {
		f = 0.05
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	schemes, err := allSchemes(false)
	if err != nil {
		return err
	}
	t := newTable("scheme", "reconstruct ms", "serialized KB", "faithful")
	orig := xmldom.SerializeString(doc.Root)
	for _, s := range schemes {
		db, err := shred.LoadDocument(s, doc)
		if err != nil {
			return err
		}
		var out string
		d, err := timeIt(cfg, func() error {
			rec, err := s.Reconstruct(db)
			if err != nil {
				return err
			}
			out = xmldom.SerializeString(rec.Root)
			return nil
		})
		if err != nil {
			return err
		}
		faithful := "yes"
		if out != orig {
			faithful = "lossy (by design)"
		}
		t.add(s.Name(), ms(d), kb(int64(len(out))), faithful)
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------------
// F3: ordered insertion

const insertFragment = `<open_auction id="open_auction_new_%d"><initial>10.00</initial><current>10.00</current><itemref item="item0"/><seller person="person0"/><annotation><author>Bench Author</author><happiness>5</happiness></annotation><quantity>1</quantity><type>Regular</type><interval><start>01/01/2000</start><end>02/01/2000</end></interval></open_auction>`

func runF3(w io.Writer, cfg Config) error {
	f := 0.25
	inserts := 30
	if cfg.Quick {
		f = 0.05
		inserts = 10
	}
	t := newTable("scheme", "total ms", "ms/insert", "note")
	for _, name := range []string{"edge", "binary", "interval", "dewey", "inline", "universal"} {
		doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
		s, err := remakeByName(name)
		if err != nil {
			return err
		}
		db, err := shred.LoadDocument(s, doc)
		if err != nil {
			return err
		}
		oas := xpath.Eval(doc, xpath.MustParse("/site/open_auctions"))
		if len(oas) != 1 {
			return fmt.Errorf("expected one open_auctions element")
		}
		parentID := int64(oas[0].Pre)
		nChildren := len(oas[0].Children)
		rng := xmlgen.NewRNG(cfg.Seed)

		start := time.Now()
		note := ""
		done := 0
		for i := 0; i < inserts; i++ {
			frag, err := xmldom.ParseString(fmt.Sprintf(insertFragment, i))
			if err != nil {
				return err
			}
			pos := rng.Intn(nChildren + done)
			if err := s.InsertSubtree(db, parentID, pos, frag.RootElement().Copy()); err != nil {
				note = err.Error()
				if len(note) > 60 {
					note = note[:60] + "..."
				}
				break
			}
			done++
		}
		total := time.Since(start)
		if done == 0 {
			t.add(name, "n/a", "n/a", note)
			continue
		}
		t.add(name, ms(total), ms(total/time.Duration(done)), fmt.Sprintf("%d inserts", done))
	}
	t.write(w)
	fmt.Fprintln(w, "expected shape: dewey/edge local updates; interval pays document-wide renumbering")
	return nil
}

func remakeByName(name string) (shred.Scheme, error) {
	switch name {
	case "edge":
		return shred.NewEdge(false), nil
	case "binary":
		return shred.NewBinary(false), nil
	case "universal":
		return shred.NewUniversal(), nil
	case "interval":
		return shred.NewInterval(false), nil
	case "dewey":
		return shred.NewDewey(false), nil
	case "inline":
		return shred.NewInline(xmlgen.AuctionDTD, "site")
	}
	return nil, fmt.Errorf("bench: unknown scheme %s", name)
}

// ---------------------------------------------------------------------------
// T4: inlining

func runT4(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	inline, err := shred.NewInline(xmlgen.AuctionDTD, "site")
	if err != nil {
		return err
	}
	edge := shred.NewEdge(false)
	dbI, err := shred.LoadDocument(inline, doc)
	if err != nil {
		return err
	}
	dbE, err := shred.LoadDocument(edge, doc)
	if err != nil {
		return err
	}

	nCols := 0
	for _, name := range inline.Mapping().Order {
		nCols += len(inline.Mapping().Relations[name].Columns)
	}
	fmt.Fprintf(w, "inlined schema: %d relations, %d mapped columns (DTD declares %d elements)\n\n",
		len(inline.Mapping().Order), nCols, len(inline.Mapping().Graph.DTD.Order))

	queries := []string{
		"/site/people/person/emailaddress",
		"/site/people/person[address/city='Berlin']/name",
		"//person[profile/@income > 60000]/creditcard",
		"/site/open_auctions/open_auction[initial > 200]/reserve",
	}
	t := newTable("query", "inline tables", "edge tables", "inline ms", "edge ms", "speedup")
	for _, q := range queries {
		p := xpath.MustParse(q)
		sqlI, err := inline.Translate(p)
		if err != nil {
			return err
		}
		sqlE, err := edge.Translate(p)
		if err != nil {
			return err
		}
		cellI, err := timeQuery(cfg, dbI, inline, q)
		if err != nil {
			return err
		}
		cellE, err := timeQuery(cfg, dbE, edge, q)
		if err != nil {
			return err
		}
		speedup := "-"
		var mi, me float64
		fmt.Sscanf(cellI, "%f", &mi)
		fmt.Sscanf(cellE, "%f", &me)
		if mi > 0 {
			speedup = fmt.Sprintf("%.1fx", me/mi)
		}
		t.add(q, fmt.Sprintf("%d", countTableRefs(sqlI)), fmt.Sprintf("%d", countTableRefs(sqlE)), cellI, cellE, speedup)
	}
	t.write(w)
	return nil
}

// countTableRefs counts table references in generated SQL (the joins-
// per-query metric of the inlining paper).
func countTableRefs(sql string) int {
	n := 0
	rest := sql
	for {
		i := strings.Index(rest, "FROM ")
		if i < 0 {
			return n
		}
		rest = rest[i+len("FROM "):]
		// Count comma-separated sources until a clause keyword.
		end := len(rest)
		for _, kw := range []string{" WHERE ", " ORDER ", " GROUP ", ")"} {
			if j := strings.Index(rest, kw); j >= 0 && j < end {
				end = j
			}
		}
		n += strings.Count(rest[:end], ",") + 1
	}
}

// ---------------------------------------------------------------------------
// F4: scalability

func runF4(w io.Writer, cfg Config) error {
	factors := []float64{0.125, 0.25, 0.5, 1}
	if cfg.Quick {
		factors = []float64{0.05, 0.1, 0.2}
	}
	schemeNames := []string{"edge", "binary", "universal", "interval", "dewey"}
	header := []string{"factor", "nodes", "query"}
	for _, n := range schemeNames {
		header = append(header, n+" ms")
	}
	t := newTable(header...)
	for _, f := range factors {
		doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
		type loaded struct {
			s  shred.Scheme
			db *sqldb.Database
		}
		var ls []loaded
		for _, n := range schemeNames {
			s, err := remakeByName(n)
			if err != nil {
				return err
			}
			db, err := shred.LoadDocument(s, doc)
			if err != nil {
				return err
			}
			ls = append(ls, loaded{s: s, db: db})
		}
		for _, q := range []string{"//item/name", "/site/people/person[address/city='Berlin']/name"} {
			row := []string{fmt.Sprintf("%.3f", f), fmt.Sprintf("%d", doc.NodeCount()), q}
			for _, l := range ls {
				cell, err := timeQuery(cfg, l.db, l.s, q)
				if err != nil {
					return err
				}
				row = append(row, cell)
			}
			t.add(row...)
		}
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------------
// F5: value-index ablation

func runF5(w io.Writer, cfg Config) error {
	sizes := []int{5000, 20000, 50000}
	if cfg.Quick {
		sizes = []int{1000, 5000}
	}
	t := newTable("rows", "scheme", "no index ms", "with index ms", "speedup")
	for _, n := range sizes {
		doc := xmlgen.Wide(n, cfg.Seed)
		// Probe value: the first row's val text. The final-step form
		// lets the planner drive the whole plan from the value index
		// (the selection-query shape of the F&K experiment); the
		// EXISTS-style [val='x'] predicate form is measured by F1/Q3.
		val := xpath.Eval(doc, xpath.MustParse("/table/row/val"))[0].Text()
		query := fmt.Sprintf("/table/row/val[. = '%s']", val)
		for _, name := range []string{"edge", "interval", "dewey"} {
			var times [2]time.Duration
			for vi, withIdx := range []bool{false, true} {
				var s shred.Scheme
				switch name {
				case "edge":
					s = shred.NewEdge(withIdx)
				case "interval":
					s = shred.NewInterval(withIdx)
				case "dewey":
					s = shred.NewDewey(withIdx)
				}
				db, err := shred.LoadDocument(s, doc)
				if err != nil {
					return err
				}
				sql, err := s.Translate(xpath.MustParse(query))
				if err != nil {
					return err
				}
				prep, err := db.Prepare(sql)
				if err != nil {
					return err
				}
				d, err := timeIt(cfg, func() error {
					_, err := prep.Query()
					return err
				})
				if err != nil {
					return err
				}
				times[vi] = d
			}
			t.add(fmt.Sprintf("%d", n), name, ms(times[0]), ms(times[1]),
				fmt.Sprintf("%.1fx", float64(times[0])/float64(times[1]+1)))
		}
	}
	t.write(w)
	fmt.Fprintln(w, "expected shape: index speedup grows with table size (scan vs probe)")
	return nil
}

// ---------------------------------------------------------------------------
// T5: native DOM vs relational

func runT5(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	edge := shred.NewEdge(true)
	interval := shred.NewInterval(true)
	dbE, err := shred.LoadDocument(edge, doc)
	if err != nil {
		return err
	}
	dbI, err := shred.LoadDocument(interval, doc)
	if err != nil {
		return err
	}
	t := newTable("query", "results", "dom ms", "edge ms", "interval ms")
	for _, qc := range queryClasses {
		p := xpath.MustParse(qc.Query)
		var n int
		dDOM, err := timeIt(cfg, func() error {
			n = len(xpath.Eval(doc, p))
			return nil
		})
		if err != nil {
			return err
		}
		cellE, err := timeQuery(cfg, dbE, edge, qc.Query)
		if err != nil {
			return err
		}
		cellI, err := timeQuery(cfg, dbI, interval, qc.Query)
		if err != nil {
			return err
		}
		t.add(qc.ID, fmt.Sprintf("%d", n), ms(dDOM), cellE, cellI)
	}
	t.write(w)
	fmt.Fprintln(w, "expected shape: DOM wins unselective scans; indexed relational wins selective value queries")
	return nil
}

// ---------------------------------------------------------------------------
// T6: order-sensitive queries

func runT6(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	queries := []string{
		"/site/open_auctions/open_auction/bidder[1]/increase",
		"//bidder[position() = 2]",
		"/site/open_auctions/open_auction/bidder[1]/following-sibling::bidder",
	}
	names := []string{"edge", "binary", "interval", "dewey"}
	header := []string{"query", "results"}
	for _, n := range names {
		header = append(header, n+" ms")
	}
	t := newTable(header...)
	type loaded struct {
		s  shred.Scheme
		db *sqldb.Database
	}
	var ls []loaded
	for _, n := range names {
		s, err := remakeByName(n)
		if err != nil {
			return err
		}
		db, err := shred.LoadDocument(s, doc)
		if err != nil {
			return err
		}
		ls = append(ls, loaded{s: s, db: db})
	}
	for _, q := range queries {
		n := len(xpath.Eval(doc, xpath.MustParse(q)))
		row := []string{q, fmt.Sprintf("%d", n)}
		for _, l := range ls {
			cell, err := timeQuery(cfg, l.db, l.s, q)
			if err != nil {
				return err
			}
			row = append(row, cell)
		}
		t.add(row...)
	}
	t.write(w)
	return nil
}

// ---------------------------------------------------------------------------
// A1: edge descendant expansion — blind wildcard chains vs path catalog

func runA1(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	queries := []string{
		"//item/name",
		"//person[profile/@income > 60000]",
		"//open_auction//increase",
	}
	t := newTable("query", "blind ms", "catalog ms", "blind unions", "catalog unions", "speedup")
	for _, q := range queries {
		var times [2]time.Duration
		var unions [2]int
		for vi, useCat := range []bool{false, true} {
			s := shred.NewEdge(false)
			s.UseCatalog(useCat)
			db, err := shred.LoadDocument(s, doc)
			if err != nil {
				return err
			}
			sql, err := s.Translate(xpath.MustParse(q))
			if err != nil {
				return err
			}
			unions[vi] = strings.Count(sql, "UNION ALL") + 1
			prep, err := db.Prepare(sql)
			if err != nil {
				return err
			}
			d, err := timeIt(cfg, func() error {
				_, err := prep.Query()
				return err
			})
			if err != nil {
				return err
			}
			times[vi] = d
		}
		t.add(q, ms(times[0]), ms(times[1]),
			fmt.Sprintf("%d", unions[0]), fmt.Sprintf("%d", unions[1]),
			fmt.Sprintf("%.1fx", float64(times[0])/float64(times[1]+1)))
	}
	t.write(w)
	fmt.Fprintln(w, "expected shape: the catalog removes wildcard hops, so fewer/cheaper chains")
	return nil
}

// ---------------------------------------------------------------------------
// A2: interval child step — parent probe vs region predicate

func runA2(w io.Writer, cfg Config) error {
	f := cfg.Factor
	if cfg.Quick {
		f = 0.1
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: f, Seed: cfg.Seed})
	queries := []string{
		"/site/categories/category/name",
		"/site/people/person[address/city='Berlin']/name",
		"/site/open_auctions/open_auction/bidder/increase",
	}
	t := newTable("query", "parent probe ms", "region ms", "region/probe")
	for _, q := range queries {
		var times [2]time.Duration
		for vi, viaRegion := range []bool{false, true} {
			s := shred.NewInterval(false)
			s.ChildViaRegion(viaRegion)
			db, err := shred.LoadDocument(s, doc)
			if err != nil {
				return err
			}
			sql, err := s.Translate(xpath.MustParse(q))
			if err != nil {
				return err
			}
			prep, err := db.Prepare(sql)
			if err != nil {
				return err
			}
			d, err := timeIt(cfg, func() error {
				_, err := prep.Query()
				return err
			})
			if err != nil {
				return err
			}
			times[vi] = d
		}
		t.add(q, ms(times[0]), ms(times[1]),
			fmt.Sprintf("%.1fx", float64(times[1])/float64(times[0]+1)))
	}
	t.write(w)
	fmt.Fprintln(w, "finding: parent-id probes win child-heavy chains at scale (region ranges re-scan whole subtrees);")
	fmt.Fprintln(w, "the pure region form only competes on short name-selective paths")
	return nil
}
