// Package bench is the experiment harness: it regenerates every table
// and figure of the reproduced evaluation (see DESIGN.md's experiment
// index) and prints them in paper-style rows. Absolute numbers are this
// machine's; the reproduction target is the shapes — who wins, by what
// factor, where the crossovers fall.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Config scales the harness.
type Config struct {
	// Factor is the base XMark scale factor (default 0.25).
	Factor float64
	// Seed drives the deterministic generators.
	Seed uint64
	// Quick shrinks sweeps for smoke runs.
	Quick bool
	// Repeat is the per-measurement repetition count (default 3; the
	// minimum is reported).
	Repeat int
}

func (c Config) withDefaults() Config {
	if c.Factor <= 0 {
		c.Factor = 0.25
	}
	if c.Repeat <= 0 {
		c.Repeat = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// All lists every experiment in report order.
func All() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "Database size per scheme", Run: runT1},
		{ID: "T2", Title: "Document loading time per scheme", Run: runT2},
		{ID: "F1", Title: "Query time by query class across schemes", Run: runF1},
		{ID: "P1", Title: "Per-operator runtime profile (EXPLAIN ANALYZE) across schemes", Run: runP1},
		{ID: "F2", Title: "Descendant-step cost vs document depth (edge expansion vs interval range)", Run: runF2},
		{ID: "T3", Title: "Full-document reconstruction time per scheme", Run: runT3},
		{ID: "F3", Title: "Ordered subtree insertion cost (Dewey vs interval renumber vs edge)", Run: runF3},
		{ID: "T4", Title: "DTD inlining: schema size, joins per query, speed vs edge", Run: runT4},
		{ID: "F4", Title: "Query scalability vs document scale factor", Run: runF4},
		{ID: "F5", Title: "Value-index ablation vs table size", Run: runF5},
		{ID: "T5", Title: "Native DOM XPath vs relational translation", Run: runT5},
		{ID: "T6", Title: "Order-sensitive queries across order encodings", Run: runT6},
		{ID: "A1", Title: "Ablation: edge descendant expansion, blind vs path-catalog", Run: runA1},
		{ID: "A2", Title: "Ablation: interval child step, parent probe vs region predicate", Run: runA2},
		{ID: "R1", Title: "Durability: WAL overhead, checkpoint and recovery time", Run: runR1},
		{ID: "Q1", Title: "Morsel-parallel speedup on the F1 mix across DOP", Run: runQ1},
		{ID: "V1", Title: "Vectorized vs row-at-a-time execution on the F1 mix and scan/join-heavy queries", Run: runV1},
		{ID: "C1", Title: "Reader throughput/latency under concurrent ordered inserts (snapshot isolation)", Run: runC1},
		{ID: "W1", Title: "Multi-writer insert throughput and fsyncs/commit under WAL group commit", Run: runW1},
		{ID: "G1", Title: "Resource governor: accounting overhead, admission gating, degrade/Recover round trip", Run: runG1},
		{ID: "S1", Title: "Server throughput and latency vs connection count (F1 mix over HTTP)", Run: runS1},
		{ID: "D1", Title: "Bounded-memory streaming load + F1 mix: 64-page buffer pool vs unbounded", Run: runD1},
	}
}

// Run executes the selected experiments ("" or "all" = every one).
func Run(w io.Writer, ids []string, cfg Config) error {
	cfg = cfg.withDefaults()
	want := map[string]bool{}
	for _, id := range ids {
		id = strings.ToUpper(strings.TrimSpace(id))
		if id == "" || id == "ALL" {
			want = nil
			break
		}
		want[id] = true
	}
	ran := 0
	for _, e := range All() {
		if want != nil && !want[e.ID] {
			continue
		}
		fmt.Fprintf(w, "\n== %s: %s ==\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("bench %s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("bench: no experiment matched %v", ids)
	}
	return nil
}

// timeIt reports the minimum duration of fn over cfg.Repeat runs.
func timeIt(cfg Config, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < cfg.Repeat; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// table renders rows with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

func kb(b int64) string {
	return fmt.Sprintf("%.0f", float64(b)/1024.0)
}
