package dtd

import "sort"

// Card is the simplified cardinality of a child in a parent's content:
// exactly one, at most one, or any number. '+' collapses to '*' per the
// "be less specific" rule.
type Card byte

// Cardinalities.
const (
	CardOne  Card = '1'
	CardOpt  Card = '?'
	CardMany Card = '*'
)

// ChildRef is one (child element, cardinality) pair of a simplified
// content model.
type ChildRef struct {
	Name string
	Card Card
}

// SimpleModel is the flattened content model of one element after the
// Shanmugasundaram simplification rules:
//
//	(e1, e2)* -> e1*, e2*      (e1, e2)? -> e1?, e2?
//	(e1 | e2) -> e1?, e2?      e** -> e*   e*? -> e*   e?? -> e?
//	e+ -> e*                   ..., a*, ..., a*, ... -> a*, ...
type SimpleModel struct {
	Children []ChildRef
	// HasText is true when the model contains #PCDATA or is ANY.
	HasText bool
	// Any is true for declared-ANY elements (all children possible).
	Any bool
}

// Simplify flattens an element's content model. Because the rules ignore
// order and generalize quantifiers, the result is a set of per-child
// cardinalities: the strongest that holds for every occurrence position.
func Simplify(m Content) *SimpleModel {
	out := &SimpleModel{}
	cards := map[string]Card{}
	var order []string
	// combine merges a child occurrence under quantifier q into the map.
	// Repeated mention of the same child forces '*' (the dedup rule).
	combine := func(name string, q Card) {
		if prev, ok := cards[name]; ok {
			_ = prev
			cards[name] = CardMany
			return
		}
		cards[name] = q
		order = append(order, name)
	}
	var walk func(c Content, q Card)
	walk = func(c Content, q Card) {
		switch c := c.(type) {
		case nil:
		case *Empty:
		case *Any:
			out.Any = true
			out.HasText = true
		case *PCData:
			out.HasText = true
		case *Name:
			combine(c.Elem, q)
		case *Seq:
			for _, it := range c.Items {
				walk(it, q)
			}
		case *Choice:
			// Choice members become optional (or stay many).
			cq := CardOpt
			if q == CardMany {
				cq = CardMany
			}
			for _, it := range c.Items {
				walk(it, cq)
			}
		case *Repeat:
			switch c.Op {
			case '?':
				cq := CardOpt
				if q == CardMany {
					cq = CardMany
				}
				walk(c.Item, cq)
			case '*', '+':
				walk(c.Item, CardMany)
			}
		}
	}
	walk(m, CardOne)
	for _, name := range order {
		out.Children = append(out.Children, ChildRef{Name: name, Card: cards[name]})
	}
	return out
}

// Graph is the element graph of a DTD: nodes are element names, edges
// are simplified parent->child references.
type Graph struct {
	DTD    *DTD
	Models map[string]*SimpleModel
	// Parents maps a child element to its distinct parent elements.
	Parents map[string][]string
	// SetValued marks elements reached by at least one '*' edge.
	SetValued map[string]bool
	// Recursive marks elements on a cycle.
	Recursive map[string]bool
}

// BuildGraph simplifies every content model and analyzes sharing and
// recursion. ANY elements contribute edges to every declared element.
func BuildGraph(d *DTD) *Graph {
	g := &Graph{
		DTD:       d,
		Models:    map[string]*SimpleModel{},
		Parents:   map[string][]string{},
		SetValued: map[string]bool{},
		Recursive: map[string]bool{},
	}
	for _, name := range d.Order {
		decl := d.Elements[name]
		m := Simplify(decl.Model)
		if m.Any {
			// ANY: every declared element is an optional repeated child.
			m.Children = nil
			for _, c := range d.Order {
				m.Children = append(m.Children, ChildRef{Name: c, Card: CardMany})
			}
		}
		g.Models[name] = m
	}
	for _, parent := range d.Order {
		seen := map[string]bool{}
		for _, ch := range g.Models[parent].Children {
			if _, declared := d.Elements[ch.Name]; !declared {
				continue
			}
			if ch.Card == CardMany {
				g.SetValued[ch.Name] = true
			}
			if !seen[ch.Name] {
				g.Parents[ch.Name] = append(g.Parents[ch.Name], parent)
				seen[ch.Name] = true
			}
		}
	}
	for p := range g.Parents {
		sort.Strings(g.Parents[p])
	}
	g.findCycles()
	return g
}

// findCycles marks every element that participates in a cycle of the
// element graph (mutual or self recursion), using Tarjan's SCC.
func (g *Graph) findCycles() {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		selfLoop := false
		for _, ch := range g.Models[v].Children {
			w := ch.Name
			if _, declared := g.DTD.Elements[w]; !declared {
				continue
			}
			if w == v {
				selfLoop = true
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 || selfLoop {
				for _, w := range scc {
					g.Recursive[w] = true
				}
			}
		}
	}
	for _, v := range g.DTD.Order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}

// SharedElements returns the elements that must get their own relation
// under shared inlining: the root, set-valued elements, elements with
// multiple distinct parents, recursive elements, and unreachable
// elements (treated as potential roots).
func (g *Graph) SharedElements() map[string]bool {
	shared := map[string]bool{}
	if g.DTD.Root != "" {
		shared[g.DTD.Root] = true
	}
	for _, name := range g.DTD.Order {
		switch {
		case g.SetValued[name]:
			shared[name] = true
		case len(g.Parents[name]) >= 2:
			shared[name] = true
		case g.Recursive[name]:
			shared[name] = true
		case len(g.Parents[name]) == 0:
			shared[name] = true
		}
	}
	return shared
}
