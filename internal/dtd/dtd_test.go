package dtd

import (
	"sort"
	"testing"
)

const bookDTD = `
<!ELEMENT book (title, author)>
<!ELEMENT article (title, author*)>
<!ATTLIST book price CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (firstname, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ATTLIST author age CDATA #REQUIRED>
`

func TestParseDeclarations(t *testing.T) {
	d, err := Parse(bookDTD, "book")
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "book" {
		t.Errorf("root = %q", d.Root)
	}
	if len(d.Elements) != 6 {
		t.Fatalf("elements = %d", len(d.Elements))
	}
	book := d.Element("book")
	if len(book.Attrs) != 1 || book.Attrs[0].Name != "price" || book.Attrs[0].Required {
		t.Errorf("book attrs = %+v", book.Attrs)
	}
	author := d.Element("author")
	if len(author.Attrs) != 1 || !author.Attrs[0].Required {
		t.Errorf("author attrs = %+v", author.Attrs)
	}
	seq, ok := book.Model.(*Seq)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("book model = %#v", book.Model)
	}
}

func TestParseAttributeTypes(t *testing.T) {
	d, err := Parse(`
<!ELEMENT e EMPTY>
<!ATTLIST e
  id ID #REQUIRED
  ref IDREF #IMPLIED
  refs IDREFS #IMPLIED
  kind (a | b | c) "a"
  token NMTOKEN #IMPLIED
  fixed CDATA #FIXED "f">
`, "")
	if err != nil {
		t.Fatal(err)
	}
	attrs := d.Element("e").Attrs
	if len(attrs) != 6 {
		t.Fatalf("attrs = %d", len(attrs))
	}
	byName := map[string]AttDef{}
	for _, a := range attrs {
		byName[a.Name] = a
	}
	if byName["id"].Type != AttID || !byName["id"].Required {
		t.Errorf("id = %+v", byName["id"])
	}
	if byName["ref"].Type != AttIDRef || byName["refs"].Type != AttIDRefs {
		t.Error("idref types wrong")
	}
	k := byName["kind"]
	if k.Type != AttEnum || len(k.Enum) != 3 || k.Default != "a" || !k.HasDflt {
		t.Errorf("kind = %+v", k)
	}
	if byName["fixed"].Default != "f" {
		t.Errorf("fixed = %+v", byName["fixed"])
	}
}

func TestParseSkipsEntitiesAndComments(t *testing.T) {
	d, err := Parse(`
<!-- a comment with <!ELEMENT fake (x)> inside -->
<!ENTITY % param "ignored">
<!ELEMENT real (#PCDATA)>
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Elements) != 1 || d.Element("real") == nil {
		t.Fatalf("elements = %v", d.Order)
	}
}

func simplifyOne(t *testing.T, decl string) *SimpleModel {
	t.Helper()
	d, err := Parse(decl, "")
	if err != nil {
		t.Fatal(err)
	}
	return Simplify(d.Elements[d.Order[0]].Model)
}

func cardOf(m *SimpleModel, name string) Card {
	for _, c := range m.Children {
		if c.Name == name {
			return c.Card
		}
	}
	return 0
}

// TestSimplifyRules exercises each of the paper's simplification rules.
func TestSimplifyRules(t *testing.T) {
	// (e1, e2)* -> e1*, e2*
	m := simplifyOne(t, `<!ELEMENT x ((a, b)*)>`)
	if cardOf(m, "a") != CardMany || cardOf(m, "b") != CardMany {
		t.Errorf("(a,b)*: %+v", m.Children)
	}
	// (e1, e2)? -> e1?, e2?
	m = simplifyOne(t, `<!ELEMENT x ((a, b)?)>`)
	if cardOf(m, "a") != CardOpt || cardOf(m, "b") != CardOpt {
		t.Errorf("(a,b)?: %+v", m.Children)
	}
	// (e1 | e2) -> e1?, e2?
	m = simplifyOne(t, `<!ELEMENT x (a | b)>`)
	if cardOf(m, "a") != CardOpt || cardOf(m, "b") != CardOpt {
		t.Errorf("(a|b): %+v", m.Children)
	}
	// e+ -> e*
	m = simplifyOne(t, `<!ELEMENT x (a+)>`)
	if cardOf(m, "a") != CardMany {
		t.Errorf("a+: %+v", m.Children)
	}
	// e** -> e*, e?? -> e?
	m = simplifyOne(t, `<!ELEMENT x ((a*)*)>`)
	if cardOf(m, "a") != CardMany {
		t.Errorf("a**: %+v", m.Children)
	}
	m = simplifyOne(t, `<!ELEMENT x ((a?)?)>`)
	if cardOf(m, "a") != CardOpt {
		t.Errorf("a??: %+v", m.Children)
	}
	// ..., a, ..., a, ... -> a*
	m = simplifyOne(t, `<!ELEMENT x (a, b, a)>`)
	if cardOf(m, "a") != CardMany || cardOf(m, "b") != CardOne {
		t.Errorf("dedup: %+v", m.Children)
	}
	// Plain sequence keeps exact cards.
	m = simplifyOne(t, `<!ELEMENT x (a, b?, c*)>`)
	if cardOf(m, "a") != CardOne || cardOf(m, "b") != CardOpt || cardOf(m, "c") != CardMany {
		t.Errorf("plain: %+v", m.Children)
	}
	// Mixed content.
	m = simplifyOne(t, `<!ELEMENT x (#PCDATA | a)*>`)
	if !m.HasText || cardOf(m, "a") != CardMany {
		t.Errorf("mixed: %+v hasText=%v", m.Children, m.HasText)
	}
	// EMPTY and ANY.
	m = simplifyOne(t, `<!ELEMENT x EMPTY>`)
	if m.HasText || len(m.Children) != 0 {
		t.Errorf("EMPTY: %+v", m)
	}
	m = simplifyOne(t, `<!ELEMENT x ANY>`)
	if !m.Any {
		t.Errorf("ANY: %+v", m)
	}
}

func TestGraphSharingAnalysis(t *testing.T) {
	d, err := Parse(`
<!ELEMENT root (single, multi*, shared1, other)>
<!ELEMENT single (#PCDATA)>
<!ELEMENT multi (shared1)>
<!ELEMENT shared1 (#PCDATA)>
<!ELEMENT other (single2?)>
<!ELEMENT single2 (#PCDATA)>
`, "root")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(d)
	shared := g.SharedElements()
	var got []string
	for name, ok := range shared {
		if ok {
			got = append(got, name)
		}
	}
	sort.Strings(got)
	// root (root), multi (set-valued), shared1 (multi-parent + setvalued
	// path? shared1 is child of root and multi -> two parents).
	want := []string{"multi", "root", "shared1"}
	if len(got) != len(want) {
		t.Fatalf("shared = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shared = %v, want %v", got, want)
		}
	}
	if g.Recursive["root"] || g.Recursive["multi"] {
		t.Error("no recursion expected")
	}
}

func TestGraphRecursionDetection(t *testing.T) {
	d, err := Parse(`
<!ELEMENT assembly (part)>
<!ELEMENT part (partname, part*)>
<!ELEMENT partname (#PCDATA)>
`, "assembly")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(d)
	if !g.Recursive["part"] {
		t.Error("part must be recursive")
	}
	if g.Recursive["assembly"] || g.Recursive["partname"] {
		t.Error("assembly/partname wrongly recursive")
	}
	if !g.SharedElements()["part"] {
		t.Error("recursive element must be shared")
	}
	// Mutual recursion.
	d2, err := Parse(`
<!ELEMENT a (b?)>
<!ELEMENT b (a?)>
`, "a")
	if err != nil {
		t.Fatal(err)
	}
	g2 := BuildGraph(d2)
	if !g2.Recursive["a"] || !g2.Recursive["b"] {
		t.Error("mutual recursion not detected")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<!ELEMENT x`,
		`<!ELEMENT x (a`,
		`<!ELEMENT x (a, b | c)>`,
		`<!ATTLIST x a BADTYPE #IMPLIED>`,
		`<!ELEMENT x NONSENSE>`,
	}
	for _, src := range cases {
		if _, err := Parse(src, ""); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}
