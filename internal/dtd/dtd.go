// Package dtd parses Document Type Definitions and implements the
// content-model simplification and element-graph analysis from
// Shanmugasundaram et al. (VLDB 1999), which drive the DTD-inlining
// relational mapping in internal/shred.
package dtd

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Content is a node of an element content model.
type Content interface{ content() }

// Name references a child element.
type Name struct{ Elem string }

// PCData is #PCDATA.
type PCData struct{}

// Seq is a sequence group (a, b, c).
type Seq struct{ Items []Content }

// Choice is a choice group (a | b | c).
type Choice struct{ Items []Content }

// Repeat applies a quantifier: '?', '*' or '+'.
type Repeat struct {
	Item Content
	Op   byte
}

// Empty is EMPTY.
type Empty struct{}

// Any is ANY.
type Any struct{}

func (*Name) content()   {}
func (*PCData) content() {}
func (*Seq) content()    {}
func (*Choice) content() {}
func (*Repeat) content() {}
func (*Empty) content()  {}
func (*Any) content()    {}

// AttType classifies attribute declarations (reduced to what the
// relational mapping needs).
type AttType int

// Attribute types.
const (
	AttCDATA AttType = iota
	AttID
	AttIDRef
	AttIDRefs
	AttEnum
	AttNMToken
)

// AttDef is one attribute definition from an ATTLIST.
type AttDef struct {
	Name     string
	Type     AttType
	Enum     []string // for AttEnum
	Required bool
	Default  string
	HasDflt  bool
}

// ElementDecl is one <!ELEMENT> declaration.
type ElementDecl struct {
	Name  string
	Model Content
	Attrs []AttDef // merged from ATTLISTs
}

// DTD is a parsed document type definition.
type DTD struct {
	// Root is the document element name; for internal subsets it is the
	// DOCTYPE name, otherwise the first declared element.
	Root     string
	Elements map[string]*ElementDecl
	// Order preserves declaration order for deterministic output.
	Order []string
}

// Element returns the declaration for name, or nil.
func (d *DTD) Element(name string) *ElementDecl { return d.Elements[name] }

type dtdParser struct {
	src []byte
	pos int
}

func (p *dtdParser) errf(format string, args ...any) error {
	return fmt.Errorf("dtd: %s at offset %d", fmt.Sprintf(format, args...), p.pos)
}

// Parse parses DTD text (an internal subset or a standalone .dtd file).
// root names the document element; pass "" to default to the first
// declared element.
func Parse(src string, root string) (*DTD, error) {
	p := &dtdParser{src: []byte(src)}
	d := &DTD{Root: root, Elements: map[string]*ElementDecl{}}
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			break
		}
		switch {
		case p.hasPrefix("<!ELEMENT"):
			if err := p.parseElement(d); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!ATTLIST"):
			if err := p.parseAttlist(d); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!ENTITY"), p.hasPrefix("<!NOTATION"):
			if err := p.skipDecl(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<?"):
			if err := p.skipUntil("?>"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected content %q", p.preview())
		}
	}
	if d.Root == "" && len(d.Order) > 0 {
		d.Root = d.Order[0]
	}
	if len(d.Elements) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	return d, nil
}

func (p *dtdParser) preview() string {
	end := p.pos + 20
	if end > len(p.src) {
		end = len(p.src)
	}
	return string(p.src[p.pos:end])
}

func (p *dtdParser) hasPrefix(s string) bool {
	return p.pos+len(s) <= len(p.src) && string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *dtdParser) skipSpaceAndComments() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if p.hasPrefix("<!--") {
			if err := p.skipUntil("-->"); err != nil {
				p.pos = len(p.src)
			}
			continue
		}
		// Parameter entity references are not expanded; skip them.
		if c == '%' {
			for p.pos < len(p.src) && p.src[p.pos] != ';' {
				p.pos++
			}
			if p.pos < len(p.src) {
				p.pos++
			}
			continue
		}
		return
	}
}

func (p *dtdParser) skipUntil(delim string) error {
	idx := strings.Index(string(p.src[p.pos:]), delim)
	if idx < 0 {
		p.pos = len(p.src)
		return p.errf("missing %q", delim)
	}
	p.pos += idx + len(delim)
	return nil
}

func (p *dtdParser) skipDecl() error {
	// Skip to the matching '>' respecting quotes.
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '>' {
			p.pos++
			return nil
		}
		if c == '"' || c == '\'' {
			q := c
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != q {
				p.pos++
			}
		}
		p.pos++
	}
	return p.errf("unterminated declaration")
}

func (p *dtdParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r >= 0x80
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || (r >= '0' && r <= '9')
}

func (p *dtdParser) parseName() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRune(p.src[p.pos:])
	if !isNameStart(r) {
		return "", p.errf("expected name, found %q", p.preview())
	}
	p.pos += size
	for p.pos < len(p.src) {
		r, size = utf8.DecodeRune(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.pos += size
	}
	return string(p.src[start:p.pos]), nil
}

func (p *dtdParser) parseElement(d *DTD) error {
	p.pos += len("<!ELEMENT")
	p.skipWS()
	name, err := p.parseName()
	if err != nil {
		return err
	}
	p.skipWS()
	var model Content
	switch {
	case p.hasPrefix("EMPTY"):
		p.pos += len("EMPTY")
		model = &Empty{}
	case p.hasPrefix("ANY"):
		p.pos += len("ANY")
		model = &Any{}
	case p.hasPrefix("("):
		model, err = p.parseGroup()
		if err != nil {
			return err
		}
	default:
		return p.errf("expected content model for element %s", name)
	}
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != '>' {
		return p.errf("expected '>' after element %s", name)
	}
	p.pos++
	decl := d.Elements[name]
	if decl == nil {
		decl = &ElementDecl{Name: name}
		d.Elements[name] = decl
		d.Order = append(d.Order, name)
	}
	decl.Model = model
	return nil
}

// parseGroup parses a parenthesized content particle with optional
// trailing quantifier.
func (p *dtdParser) parseGroup() (Content, error) {
	if !p.hasPrefix("(") {
		return nil, p.errf("expected '('")
	}
	p.pos++
	var items []Content
	sep := byte(0) // ',' or '|'
	for {
		p.skipWS()
		var item Content
		var err error
		switch {
		case p.hasPrefix("("):
			item, err = p.parseGroup()
		case p.hasPrefix("#PCDATA"):
			p.pos += len("#PCDATA")
			item = &PCData{}
		default:
			var nm string
			nm, err = p.parseName()
			if err == nil {
				item = &Name{Elem: nm}
			}
		}
		if err != nil {
			return nil, err
		}
		item = p.parseQuantifier(item)
		items = append(items, item)
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated content group")
		}
		c := p.src[p.pos]
		if c == ')' {
			p.pos++
			break
		}
		if c != ',' && c != '|' {
			return nil, p.errf("expected ',' '|' or ')' in content group")
		}
		if sep == 0 {
			sep = c
		} else if sep != c {
			return nil, p.errf("mixed ',' and '|' in one group")
		}
		p.pos++
	}
	var group Content
	switch {
	case len(items) == 1:
		group = items[0]
	case sep == '|':
		group = &Choice{Items: items}
	default:
		group = &Seq{Items: items}
	}
	return p.parseQuantifier(group), nil
}

func (p *dtdParser) parseQuantifier(c Content) Content {
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '?', '*', '+':
			op := p.src[p.pos]
			p.pos++
			return &Repeat{Item: c, Op: op}
		}
	}
	return c
}

func (p *dtdParser) parseAttlist(d *DTD) error {
	p.pos += len("<!ATTLIST")
	p.skipWS()
	elem, err := p.parseName()
	if err != nil {
		return err
	}
	decl := d.Elements[elem]
	if decl == nil {
		decl = &ElementDecl{Name: elem}
		d.Elements[elem] = decl
		d.Order = append(d.Order, elem)
	}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '>' {
			p.pos++
			return nil
		}
		att := AttDef{}
		att.Name, err = p.parseName()
		if err != nil {
			return err
		}
		p.skipWS()
		// Attribute type.
		switch {
		case p.hasPrefix("CDATA"):
			p.pos += len("CDATA")
			att.Type = AttCDATA
		case p.hasPrefix("IDREFS"):
			p.pos += len("IDREFS")
			att.Type = AttIDRefs
		case p.hasPrefix("IDREF"):
			p.pos += len("IDREF")
			att.Type = AttIDRef
		case p.hasPrefix("ID"):
			p.pos += len("ID")
			att.Type = AttID
		case p.hasPrefix("NMTOKENS"):
			p.pos += len("NMTOKENS")
			att.Type = AttNMToken
		case p.hasPrefix("NMTOKEN"):
			p.pos += len("NMTOKEN")
			att.Type = AttNMToken
		case p.hasPrefix("ENTITIES"), p.hasPrefix("ENTITY"):
			if p.hasPrefix("ENTITIES") {
				p.pos += len("ENTITIES")
			} else {
				p.pos += len("ENTITY")
			}
			att.Type = AttCDATA
		case p.hasPrefix("NOTATION"):
			p.pos += len("NOTATION")
			p.skipWS()
			if _, err := p.parseParenList(); err != nil {
				return err
			}
			att.Type = AttEnum
		case p.hasPrefix("("):
			att.Enum, err = p.parseParenList()
			if err != nil {
				return err
			}
			att.Type = AttEnum
		default:
			return p.errf("unknown attribute type for %s on %s", att.Name, elem)
		}
		p.skipWS()
		// Default.
		switch {
		case p.hasPrefix("#REQUIRED"):
			p.pos += len("#REQUIRED")
			att.Required = true
		case p.hasPrefix("#IMPLIED"):
			p.pos += len("#IMPLIED")
		case p.hasPrefix("#FIXED"):
			p.pos += len("#FIXED")
			p.skipWS()
			att.Default, err = p.parseQuoted()
			if err != nil {
				return err
			}
			att.HasDflt = true
		default:
			att.Default, err = p.parseQuoted()
			if err != nil {
				return err
			}
			att.HasDflt = true
		}
		decl.Attrs = append(decl.Attrs, att)
	}
}

func (p *dtdParser) parseParenList() ([]string, error) {
	if !p.hasPrefix("(") {
		return nil, p.errf("expected '('")
	}
	p.pos++
	var out []string
	for {
		p.skipWS()
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c == '|' || c == ')' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				break
			}
			p.pos++
		}
		out = append(out, string(p.src[start:p.pos]))
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated enumeration")
		}
		if p.src[p.pos] == ')' {
			p.pos++
			return out, nil
		}
		if p.src[p.pos] != '|' {
			return nil, p.errf("expected '|' or ')' in enumeration")
		}
		p.pos++
	}
}

func (p *dtdParser) parseQuoted() (string, error) {
	if p.pos >= len(p.src) {
		return "", p.errf("expected quoted literal")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", p.errf("expected quoted literal")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated literal")
	}
	out := string(p.src[start:p.pos])
	p.pos++
	return out, nil
}
