// Package lru provides a small, concurrency-safe, bounded
// least-recently-used cache keyed by string. It is the shared substrate
// for the engine's plan cache (internal/sqldb) and the XPath→SQL
// translation cache (internal/core): both need the same structural
// behaviour — bounded size, recency eviction, cheap purge — while each
// layer keeps its own semantic hit/miss accounting.
package lru

import (
	"container/list"
	"sync"
)

type entry[V any] struct {
	key string
	val V
}

// Cache is a bounded LRU map. A capacity of zero (or less) disables the
// cache entirely: Put is a no-op and Get always misses. All methods are
// safe for concurrent use.
type Cache[V any] struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

// New creates a cache holding at most capacity entries.
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		order:    list.New(),
		items:    map[string]*list.Element{},
	}
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Put inserts or replaces the value for key, evicting the least recently
// used entry when the cache is full.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		c.evictOldest()
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, val: val})
}

// evictOldest removes the back element. Caller holds the lock.
func (c *Cache[V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.order.Remove(el)
	delete(c.items, el.Value.(*entry[V]).key)
	c.evictions++
}

// Remove deletes key if present. A removal is not counted as an
// eviction (evictions measure capacity pressure, not invalidation).
func (c *Cache[V]) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Purge drops every entry, keeping the capacity and eviction counter.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = map[string]*list.Element{}
}

// Resize changes the capacity, evicting from the LRU end as needed.
// Resizing to zero (or less) purges the cache and disables it.
func (c *Cache[V]) Resize(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	if capacity <= 0 {
		c.order.Init()
		c.items = map[string]*list.Element{}
		return
	}
	for c.order.Len() > capacity {
		c.evictOldest()
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the configured capacity.
func (c *Cache[V]) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Evictions returns the number of capacity evictions so far.
func (c *Cache[V]) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
