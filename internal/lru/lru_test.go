package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicPutGet(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// Replacement keeps size.
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("replaced a = %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted out of order")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestRemoveAndPurge(t *testing.T) {
	c := New[string](4)
	c.Put("x", "1")
	c.Remove("x")
	c.Remove("missing") // no-op
	if _, ok := c.Get("x"); ok {
		t.Fatal("removed key hit")
	}
	c.Put("y", "2")
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if c.Evictions() != 0 {
		t.Fatal("remove/purge counted as eviction")
	}
}

func TestResize(t *testing.T) {
	c := New[int](4)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Resize(2)
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Cap())
	}
	// The two most recent survive.
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("most recent evicted by resize")
	}
	// Zero capacity disables the cache.
	c.Resize(0)
	c.Put("z", 9)
	if _, ok := c.Get("z"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled len = %d", c.Len())
	}
}

func TestZeroCapacityNew(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				c.Put(k, i)
				c.Get(k)
				if i%50 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}
