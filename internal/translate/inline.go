package translate

import (
	"fmt"
	"strings"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// InlineColumnKind classifies inlined-schema columns.
type InlineColumnKind int

// Column kinds of the inlined schema.
const (
	// ColText holds the text content of an element with #PCDATA.
	ColText InlineColumnKind = iota
	// ColPresence is a boolean marking an optional textless element.
	ColPresence
	// ColAttr holds an attribute value.
	ColAttr
)

// InlineColumn is one mapped column of an inlined relation. Key is the
// logical path key ("address.city", "@id", "profile.@income", "#text");
// it doubles as the SQL column name (quoted where used).
type InlineColumn struct {
	Key  string
	Path []string // element path from the relation root ([] = the root)
	Attr string   // attribute name for ColAttr
	Kind InlineColumnKind
}

// InlineRelation is one relation of the inlined schema: a shared DTD
// element plus every non-shared descendant inlined into it.
type InlineRelation struct {
	Elem    string
	Table   string
	Columns []InlineColumn
	ByKey   map[string]*InlineColumn
}

// Placement records where an element name is stored: which relation and
// at which inner path.
type Placement struct {
	Rel  *InlineRelation
	Path []string // inner path; empty means the relation root itself
}

// InlineMapping is the full DTD-to-relational mapping produced by shared
// inlining (Shanmugasundaram et al. 1999).
type InlineMapping struct {
	Graph  *dtd.Graph
	Shared map[string]bool
	// Relations by element name; Order preserves DTD order.
	Relations map[string]*InlineRelation
	Order     []string
	// Placements lists, per element name, every spot it occupies.
	Placements map[string][]Placement
}

// BuildInlineMapping derives the inlined relational schema from a DTD
// element graph.
func BuildInlineMapping(g *dtd.Graph) (*InlineMapping, error) {
	m := &InlineMapping{
		Graph:      g,
		Shared:     g.SharedElements(),
		Relations:  map[string]*InlineRelation{},
		Placements: map[string][]Placement{},
	}
	for _, name := range g.DTD.Order {
		if !m.Shared[name] {
			continue
		}
		rel := &InlineRelation{
			Elem:  name,
			Table: "inl_" + SanitizeName(name),
			ByKey: map[string]*InlineColumn{},
		}
		m.Relations[name] = rel
		m.Order = append(m.Order, name)
	}
	for _, name := range m.Order {
		if err := m.populate(m.Relations[name]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *InlineMapping) addColumn(rel *InlineRelation, col InlineColumn) {
	if _, ok := rel.ByKey[col.Key]; ok {
		return
	}
	rel.Columns = append(rel.Columns, col)
	rel.ByKey[col.Key] = &rel.Columns[len(rel.Columns)-1]
}

// populate walks the non-shared region below rel's element, creating
// columns and placements.
func (m *InlineMapping) populate(rel *InlineRelation) error {
	var walk func(elem string, path []string) error
	walk = func(elem string, path []string) error {
		decl := m.Graph.DTD.Elements[elem]
		model := m.Graph.Models[elem]
		key := strings.Join(path, ".")
		m.Placements[elem] = append(m.Placements[elem], Placement{Rel: rel, Path: append([]string{}, path...)})

		// The element's own value column.
		if len(path) == 0 {
			if model != nil && model.HasText {
				m.addColumn(rel, InlineColumn{Key: "#text", Kind: ColText})
			}
		} else {
			if model != nil && model.HasText {
				m.addColumn(rel, InlineColumn{Key: key, Path: append([]string{}, path...), Kind: ColText})
			} else {
				m.addColumn(rel, InlineColumn{Key: key, Path: append([]string{}, path...), Kind: ColPresence})
			}
		}
		// Attribute columns.
		if decl != nil {
			for _, a := range decl.Attrs {
				akey := "@" + a.Name
				if len(path) > 0 {
					akey = key + ".@" + a.Name
				}
				m.addColumn(rel, InlineColumn{Key: akey, Path: append([]string{}, path...), Attr: a.Name, Kind: ColAttr})
			}
		}
		// Recurse into inlined children.
		if model != nil {
			for _, ch := range model.Children {
				if _, declared := m.Graph.DTD.Elements[ch.Name]; !declared {
					continue
				}
				if m.Shared[ch.Name] {
					continue // reachable via the child relation instead
				}
				if err := walk(ch.Name, append(path, ch.Name)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(rel.Elem, nil)
}

// ColumnKey builds the logical key for an inner path (and optional
// attribute).
func ColumnKey(path []string, attr string) string {
	key := strings.Join(path, ".")
	switch {
	case attr != "" && key != "":
		return key + ".@" + attr
	case attr != "":
		return "@" + attr
	case key == "":
		return "#text"
	default:
		return key
	}
}

// ---------------------------------------------------------------------------
// Translation

// inlineJoin is one hop of a relation join chain. parentCode is the
// inner path (within the parent relation) of this relation's parent
// element — the parentCODE discriminator of Shanmugasundaram et al.,
// needed because a child relation can hang off several inlined spots of
// the same host (items under africa vs. asia both host to site rows).
type inlineJoin struct {
	rel        *InlineRelation
	parentCode string
}

// inlinePos is one position reached while walking an XPath over the
// mapping: a join chain of relations ending at (rel, innerPath).
type inlinePos struct {
	joins []inlineJoin // r0 ... rk; joins[i+1].parentid = joins[i].id
	path  []string     // inner path within the last relation
	elem  string       // current element name
	// free marks a root-anchored descendant entry: the position's last
	// relation is scanned without an ancestry join chain (exact for
	// document-rooted //, the only place it is produced).
	free bool
}

func (p inlinePos) rel() *InlineRelation { return p.joins[len(p.joins)-1].rel }

func (p inlinePos) key() string {
	names := make([]string, len(p.joins))
	for i, j := range p.joins {
		names[i] = j.rel.Elem + "@" + j.parentCode
	}
	return strings.Join(names, ">") + "|" + strings.Join(p.path, ".") + "|" + fmt.Sprint(p.free)
}

// Inline translates XPath to SQL over the inlined schema. Node identity
// is approximated by the hosting row's id (inlined elements do not carry
// their own ids — the documented information loss of inlining).
func Inline(p *xpath.Path, m *InlineMapping) (string, error) {
	if !p.Absolute {
		return "", unsupported("inline", "relative paths")
	}
	if len(p.Steps) == 0 {
		return "", unsupported("inline", "the bare document path /")
	}

	type route struct {
		pos   inlinePos
		conds []routeCond
		// textOf, when true, selects the current column's text (a
		// trailing text() step).
		textOf bool
		attr   string // trailing attribute step
	}
	routes := []route{}

	// First step.
	first := p.Steps[0]
	rest := p.Steps
	switch first.Axis {
	case xpath.AxisChild:
		if first.Test.Kind != xpath.TestName {
			return "", unsupported("inline", "a non-name root step")
		}
		rel, ok := m.Relations[first.Test.Name]
		if !ok || first.Test.Name != m.Graph.DTD.Root {
			return "", unsupported("inline", "a root element not matching the DTD root")
		}
		routes = append(routes, route{pos: inlinePos{joins: []inlineJoin{{rel: rel}}, elem: rel.Elem}})
		if err := applyInlinePreds(m, &routes[0].conds, routes[0].pos, first.Preds); err != nil {
			return "", err
		}
		rest = p.Steps[1:]
	case xpath.AxisDescendant:
		if first.Test.Kind != xpath.TestName {
			return "", unsupported("inline", "// with a non-name test at the document root")
		}
		for _, pl := range m.Placements[first.Test.Name] {
			pos := inlinePos{joins: []inlineJoin{{rel: pl.Rel}}, path: pl.Path, elem: first.Test.Name, free: true}
			r := route{pos: pos}
			if err := applyInlinePreds(m, &r.conds, pos, first.Preds); err != nil {
				return "", err
			}
			routes = append(routes, r)
		}
		rest = p.Steps[1:]
	default:
		return "", unsupported("inline", "axis "+first.Axis.String()+" at the document root")
	}

	for _, s := range rest {
		var next []route
		for _, r := range routes {
			if r.textOf || r.attr != "" {
				return "", unsupported("inline", "steps after a value step")
			}
			switch s.Axis {
			case xpath.AxisChild:
				switch s.Test.Kind {
				case xpath.TestName:
					nps, err := inlineChildPositions(m, r.pos, s.Test.Name)
					if err != nil {
						return "", err
					}
					for _, np := range nps {
						nr := route{pos: np, conds: append([]routeCond{}, r.conds...)}
						if err := applyInlinePreds(m, &nr.conds, np, s.Preds); err != nil {
							return "", err
						}
						next = append(next, nr)
					}
				case xpath.TestText:
					nr := r
					nr.textOf = true
					if len(s.Preds) > 0 {
						return "", unsupported("inline", "predicates on text()")
					}
					next = append(next, nr)
				default:
					return "", unsupported("inline", "wildcard or kind tests")
				}
			case xpath.AxisAttribute:
				if s.Test.Kind != xpath.TestName {
					return "", unsupported("inline", "attribute wildcards")
				}
				key := ColumnKey(r.pos.path, s.Test.Name)
				if _, ok := r.pos.rel().ByKey[key]; !ok {
					continue // attribute not declared here: no rows
				}
				nr := r
				nr.attr = s.Test.Name
				if len(s.Preds) > 0 {
					return "", unsupported("inline", "predicates on attribute steps")
				}
				next = append(next, nr)
			case xpath.AxisDescendant:
				if s.Test.Kind != xpath.TestName {
					return "", unsupported("inline", "// with a non-name test")
				}
				nps, err := inlineDescendantPositions(m, r.pos, s.Test.Name)
				if err != nil {
					return "", err
				}
				for _, np := range nps {
					nr := route{pos: np, conds: append([]routeCond{}, r.conds...)}
					if err := applyInlinePreds(m, &nr.conds, np, s.Preds); err != nil {
						return "", err
					}
					next = append(next, nr)
				}
			default:
				return "", unsupported("inline", "axis "+s.Axis.String())
			}
			if len(next) > 128 {
				return "", fmt.Errorf("translate: inline route expansion exceeds 128 branches")
			}
		}
		routes = next
	}

	if len(routes) == 0 {
		return "SELECT 0 AS id, NULL AS val WHERE 1 = 0", nil
	}
	var parts []string
	seen := map[string]bool{}
	for _, r := range routes {
		q := inlineRouteSQL(r.pos, r.conds, r.textOf, r.attr)
		if !seen[q] {
			seen[q] = true
			parts = append(parts, q)
		}
	}
	if len(parts) == 1 {
		return parts[0] + " ORDER BY id", nil
	}
	return "SELECT DISTINCT id, val FROM (" + strings.Join(parts, " UNION ALL ") + ") u ORDER BY id", nil
}

// inlineChildPositions steps from pos to the named child element.
func inlineChildPositions(m *InlineMapping, pos inlinePos, name string) ([]inlinePos, error) {
	model := m.Graph.Models[pos.elem]
	if model == nil {
		return nil, nil
	}
	found := false
	for _, ch := range model.Children {
		if ch.Name == name {
			found = true
			break
		}
	}
	if !found {
		return nil, nil
	}
	if _, declared := m.Graph.DTD.Elements[name]; !declared {
		return nil, nil
	}
	if m.Shared[name] {
		child := inlineJoin{rel: m.Relations[name], parentCode: strings.Join(pos.path, ".")}
		joins := append(append([]inlineJoin{}, pos.joins...), child)
		return []inlinePos{{joins: joins, elem: name, free: pos.free}}, nil
	}
	np := inlinePos{
		joins: pos.joins,
		path:  append(append([]string{}, pos.path...), name),
		elem:  name,
		free:  pos.free,
	}
	return []inlinePos{np}, nil
}

// inlineDescendantPositions computes the positions reachable from pos by
// one-or-more child steps ending at the named element. Crossing a
// relation already on the join chain means recursion; that requires a
// fixpoint (recursive SQL) and is reported as unsupported unless the
// search is document-rooted (handled by the caller via Placements).
func inlineDescendantPositions(m *InlineMapping, pos inlinePos, name string) ([]inlinePos, error) {
	var out []inlinePos
	visited := map[string]bool{}
	var rec func(p inlinePos) error
	rec = func(p inlinePos) error {
		model := m.Graph.Models[p.elem]
		if model == nil {
			return nil
		}
		for _, ch := range model.Children {
			if _, declared := m.Graph.DTD.Elements[ch.Name]; !declared {
				continue
			}
			var np inlinePos
			if m.Shared[ch.Name] {
				for _, j := range p.joins {
					if j.rel.Elem == ch.Name {
						return unsupported("inline", "descendant steps through recursive elements below the root (needs recursive SQL)")
					}
				}
				np = inlinePos{
					joins: append(append([]inlineJoin{}, p.joins...), inlineJoin{rel: m.Relations[ch.Name], parentCode: strings.Join(p.path, ".")}),
					elem:  ch.Name,
					free:  p.free,
				}
			} else {
				np = inlinePos{
					joins: p.joins,
					path:  append(append([]string{}, p.path...), ch.Name),
					elem:  ch.Name,
					free:  p.free,
				}
			}
			k := np.key()
			if visited[k] {
				continue
			}
			visited[k] = true
			if ch.Name == name {
				out = append(out, np)
			}
			if err := rec(np); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(pos); err != nil {
		return nil, err
	}
	return out, nil
}

// routeCond is one SQL condition anchored at a join index.
type routeCond struct {
	joinIdx int
	// cond receives the alias of joins[joinIdx] and returns SQL.
	cond func(alias string) string
}

// applyInlinePreds translates a step's predicates at pos.
func applyInlinePreds(m *InlineMapping, conds *[]routeCond, pos inlinePos, preds []xpath.Expr) error {
	for _, pe := range preds {
		c, err := inlinePred(m, pos, pe)
		if err != nil {
			return err
		}
		*conds = append(*conds, c)
	}
	return nil
}

func inlinePred(m *InlineMapping, pos inlinePos, e xpath.Expr) (routeCond, error) {
	idx := len(pos.joins) - 1
	switch e := e.(type) {
	case *xpath.BinaryExpr:
		switch e.Op {
		case "and", "or":
			l, err := inlinePred(m, pos, e.L)
			if err != nil {
				return routeCond{}, err
			}
			r, err := inlinePred(m, pos, e.R)
			if err != nil {
				return routeCond{}, err
			}
			op := strings.ToUpper(e.Op)
			if l.joinIdx != r.joinIdx {
				return routeCond{}, unsupported("inline", "mixed-anchor boolean predicates")
			}
			return routeCond{joinIdx: l.joinIdx, cond: func(a string) string {
				return "(" + l.cond(a) + " " + op + " " + r.cond(a) + ")"
			}}, nil
		default:
			return inlineComparison(m, pos, e)
		}
	case *xpath.NumberLit:
		n := numLiteral(e.Val)
		if len(pos.path) == 0 {
			// Position among same-name siblings of a shared element.
			return routeCond{joinIdx: idx, cond: func(a string) string {
				return a + ".ordinal = " + n
			}}, nil
		}
		// Inlined elements occur at most once.
		return routeCond{joinIdx: idx, cond: func(a string) string {
			if n == "1" {
				return "1 = 1"
			}
			return "1 = 0"
		}}, nil
	case *xpath.PathOperand:
		return inlineValueCond(m, pos, e.Path, func(col string) string {
			return col + " IS NOT NULL"
		})
	case *xpath.FuncCall:
		switch e.Name {
		case "not":
			if len(e.Args) != 1 {
				return routeCond{}, unsupported("inline", "not() arity")
			}
			inner, err := inlinePred(m, pos, e.Args[0])
			if err != nil {
				return routeCond{}, err
			}
			return routeCond{joinIdx: inner.joinIdx, cond: func(a string) string {
				return "NOT (" + inner.cond(a) + ")"
			}}, nil
		case "true":
			return routeCond{joinIdx: idx, cond: func(string) string { return "1 = 1" }}, nil
		case "false":
			return routeCond{joinIdx: idx, cond: func(string) string { return "1 = 0" }}, nil
		case "contains", "starts-with":
			if len(e.Args) != 2 {
				return routeCond{}, unsupported("inline", e.Name+"() arity")
			}
			lit, ok := e.Args[1].(*xpath.StringLit)
			if !ok {
				return routeCond{}, unsupported("inline", e.Name+"() with a non-literal pattern")
			}
			pattern := "%" + likeEscapeMeta(lit.Val) + "%"
			if e.Name == "starts-with" {
				pattern = likeEscapeMeta(lit.Val) + "%"
			}
			po, ok := e.Args[0].(*xpath.PathOperand)
			if !ok {
				return routeCond{}, unsupported("inline", "non-path operand in string function")
			}
			if len(po.Path.Steps) == 1 && po.Path.Steps[0].Axis == xpath.AxisSelf {
				key := ColumnKey(pos.path, "")
				if _, ok := pos.rel().ByKey[key]; !ok {
					return routeCond{joinIdx: idx, cond: func(string) string { return "1 = 0" }}, nil
				}
				return routeCond{joinIdx: idx, cond: func(a string) string {
					return fmt.Sprintf("%s.%s LIKE %s ESCAPE '\\'", a, QuoteIdent(key), QuoteString(pattern))
				}}, nil
			}
			return inlineValueCond(m, pos, po.Path, func(col string) string {
				return fmt.Sprintf("%s LIKE %s ESCAPE '\\'", col, QuoteString(pattern))
			})
		}
		return routeCond{}, unsupported("inline", e.Name+"() in a predicate")
	}
	return routeCond{}, unsupported("inline", fmt.Sprintf("predicate %T", e))
}

func inlineComparison(m *InlineMapping, pos inlinePos, e *xpath.BinaryExpr) (routeCond, error) {
	l, r, op := e.L, e.R, e.Op
	if isLiteral(l) && !isLiteral(r) {
		l, r = r, l
		op = flipXPathOp(op)
	}
	lit, err := literalSQL(r)
	if err != nil {
		return routeCond{}, err
	}
	if op == "!=" {
		op = "<>"
	}
	idx := len(pos.joins) - 1
	switch lx := l.(type) {
	case *xpath.FuncCall:
		if lx.Name == "position" {
			if len(pos.path) == 0 {
				sqlOp := op
				return routeCond{joinIdx: idx, cond: func(a string) string {
					return a + ".ordinal " + sqlOp + " " + lit
				}}, nil
			}
			// Inlined elements always occupy position 1; emit the
			// constant comparison and let the engine fold it.
			return routeCond{joinIdx: idx, cond: func(string) string {
				return "1 " + op + " " + lit
			}}, nil
		}
		return routeCond{}, unsupported("inline", lx.Name+"() comparison")
	case *xpath.PathOperand:
		if len(lx.Path.Steps) == 1 && lx.Path.Steps[0].Axis == xpath.AxisSelf {
			key := ColumnKey(pos.path, "")
			if _, ok := pos.rel().ByKey[key]; !ok {
				return routeCond{joinIdx: idx, cond: func(string) string { return "1 = 0" }}, nil
			}
			sqlOp := op
			return routeCond{joinIdx: idx, cond: func(a string) string {
				return a + "." + QuoteIdent(key) + " " + sqlOp + " " + lit
			}}, nil
		}
		return inlineValueCond(m, pos, lx.Path, func(col string) string {
			return col + " " + op + " " + lit
		})
	}
	return routeCond{}, unsupported("inline", fmt.Sprintf("comparison of %T", l))
}

// inlineValueCond resolves a relative predicate path to a condition over
// either a column of the anchor relation or an EXISTS over child
// relations.
func inlineValueCond(m *InlineMapping, pos inlinePos, p *xpath.Path, mk func(col string) string) (routeCond, error) {
	if p.Absolute {
		return routeCond{}, unsupported("inline", "absolute paths inside predicates")
	}
	idx := len(pos.joins) - 1
	cur := pos
	// Chain of shared crossings: each adds one EXISTS level. code is
	// the parentCODE the crossing must match.
	type crossing struct {
		rel  *InlineRelation
		code string
	}
	var crossings []crossing
	attr := ""
	for i, s := range p.Steps {
		if len(s.Preds) > 0 {
			return routeCond{}, unsupported("inline", "nested predicates")
		}
		switch {
		case s.Axis == xpath.AxisChild && s.Test.Kind == xpath.TestName:
			model := m.Graph.Models[cur.elem]
			ok := false
			if model != nil {
				for _, ch := range model.Children {
					if ch.Name == s.Test.Name {
						ok = true
						break
					}
				}
			}
			if !ok {
				return routeCond{joinIdx: idx, cond: func(string) string { return "1 = 0" }}, nil
			}
			if m.Shared[s.Test.Name] {
				crossings = append(crossings, crossing{rel: m.Relations[s.Test.Name], code: strings.Join(cur.path, ".")})
				cur = inlinePos{joins: []inlineJoin{{rel: m.Relations[s.Test.Name]}}, elem: s.Test.Name}
			} else {
				cur = inlinePos{joins: cur.joins, path: append(append([]string{}, cur.path...), s.Test.Name), elem: s.Test.Name}
			}
		case s.Axis == xpath.AxisAttribute && s.Test.Kind == xpath.TestName:
			if i != len(p.Steps)-1 {
				return routeCond{}, unsupported("inline", "attribute mid-path")
			}
			attr = s.Test.Name
		case s.Axis == xpath.AxisChild && s.Test.Kind == xpath.TestText:
			if i != len(p.Steps)-1 {
				return routeCond{}, unsupported("inline", "text() mid-path")
			}
			// text() resolves to the element's own text column.
		default:
			return routeCond{}, unsupported("inline", "predicate step "+s.Axis.String())
		}
	}

	var innerPath []string
	if len(crossings) == 0 {
		innerPath = cur.path
	} else {
		innerPath = cur.path
	}
	key := ColumnKey(innerPath, attr)
	lastRel := pos.rel()
	if len(crossings) > 0 {
		lastRel = crossings[len(crossings)-1].rel
	}
	if _, ok := lastRel.ByKey[key]; !ok {
		return routeCond{joinIdx: idx, cond: func(string) string { return "1 = 0" }}, nil
	}

	if len(crossings) == 0 {
		return routeCond{joinIdx: idx, cond: func(a string) string {
			return mk(a + "." + QuoteIdent(key))
		}}, nil
	}
	// Build nested EXISTS over the crossing chain.
	return routeCond{joinIdx: idx, cond: func(a string) string {
		var b strings.Builder
		parentAlias := a
		closers := 0
		for ci, cr := range crossings {
			sub := fmt.Sprintf("%s_x%d", a, ci+1)
			b.WriteString("EXISTS (SELECT 1 FROM " + cr.rel.Table + " " + sub +
				" WHERE " + sub + ".parentid = " + parentAlias + ".id AND " +
				sub + ".parentcode = " + QuoteString(cr.code) + " AND ")
			parentAlias = sub
			closers++
		}
		b.WriteString(mk(parentAlias + "." + QuoteIdent(key)))
		for i := 0; i < closers; i++ {
			b.WriteString(")")
		}
		return b.String()
	}}, nil
}

// inlineRouteSQL renders one route: the relation join chain plus
// anchored conditions, selecting the host row id and the value column.
func inlineRouteSQL(pos inlinePos, conds []routeCond, textOf bool, attr string) string {
	aliases := make([]string, len(pos.joins))
	var from []string
	var where []string
	for i, j := range pos.joins {
		a := fmt.Sprintf("i%d", i+1)
		aliases[i] = a
		from = append(from, j.rel.Table+" "+a)
		if i > 0 {
			where = append(where, fmt.Sprintf("%s.parentid = %s.id", a, aliases[i-1]))
			where = append(where, fmt.Sprintf("%s.parentcode = %s", a, QuoteString(j.parentCode)))
		}
	}
	last := aliases[len(aliases)-1]
	rel := pos.rel()

	// Presence condition for the final inlined element.
	if len(pos.path) > 0 {
		key := ColumnKey(pos.path, "")
		if _, ok := rel.ByKey[key]; ok {
			where = append(where, last+"."+QuoteIdent(key)+" IS NOT NULL")
		} else {
			where = append(where, "1 = 0")
		}
	}
	for _, c := range conds {
		where = append(where, c.cond(aliases[c.joinIdx]))
	}

	valExpr := "NULL"
	key := ColumnKey(pos.path, attr)
	if textOf {
		key = ColumnKey(pos.path, "")
	}
	if col, ok := rel.ByKey[key]; ok && (col.Kind == ColText || col.Kind == ColAttr) {
		valExpr = last + "." + QuoteIdent(key)
		if attr != "" || textOf {
			where = append(where, valExpr+" IS NOT NULL")
		}
	}

	sql := "SELECT " + last + ".id AS id, " + valExpr + " AS val FROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	return sql
}
