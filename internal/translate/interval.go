package translate

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// IntervalOptions parameterizes the interval-encoding translation.
type IntervalOptions struct {
	// Table is the accel table name (default "accel"):
	// accel(pre, parent, size, level, ordinal, kind, name, value).
	Table string
	// ChildViaRegion translates child steps as region predicates
	// (pre-range plus level equality) instead of parent-id probes —
	// the pure-Grust formulation without a parent column (ablation A2).
	ChildViaRegion bool
}

func (o *IntervalOptions) defaults() {
	if o.Table == "" {
		o.Table = "accel"
	}
}

// Interval translates XPath to SQL over the XPath-accelerator layout
// (Grust): every axis becomes a region predicate on (pre, size, level),
// so descendant steps are single range joins regardless of depth — the
// structural contrast with the Edge expansion measured by F2.
func Interval(p *xpath.Path, opt IntervalOptions) (string, error) {
	opt.defaults()
	if !p.Absolute {
		return "", unsupported("interval", "relative paths")
	}
	if len(p.Steps) == 0 {
		return "", unsupported("interval", "the bare document path /")
	}
	tbl := opt.Table
	var from []string
	var where []string
	cur := "" // empty = document node (pre 0, size = all)
	n := 0
	newAlias := func() string {
		n++
		a := fmt.Sprintf("a%d", n)
		from = append(from, tbl+" "+a)
		return a
	}

	for _, s := range p.Steps {
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisAttribute:
			a := newAlias()
			if opt.ChildViaRegion && cur != "" {
				where = append(where,
					fmt.Sprintf("%s.pre > %s.pre", a, cur),
					fmt.Sprintf("%s.pre <= %s.pre + %s.size", a, cur, cur),
					fmt.Sprintf("%s.level = %s.level + 1", a, cur),
				)
			} else {
				parent := "0"
				if cur != "" {
					parent = cur + ".pre"
				}
				where = append(where, fmt.Sprintf("%s.parent = %s", a, parent))
			}
			if c := intervalTestCond(a, s.Test, s.Axis == xpath.AxisAttribute); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisDescendant:
			a := newAlias()
			if cur == "" {
				// Descendant of the document node: every node.
			} else {
				where = append(where,
					fmt.Sprintf("%s.pre > %s.pre", a, cur),
					fmt.Sprintf("%s.pre <= %s.pre + %s.size", a, cur, cur),
				)
			}
			if c := intervalTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisParent:
			if cur == "" {
				return "", unsupported("interval", "parent of the document node")
			}
			a := newAlias()
			where = append(where, fmt.Sprintf("%s.pre = %s.parent", a, cur))
			if c := intervalTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisAncestor:
			if cur == "" {
				return "", unsupported("interval", "ancestor of the document node")
			}
			a := newAlias()
			where = append(where,
				fmt.Sprintf("%s.pre < %s.pre", a, cur),
				fmt.Sprintf("%s.pre + %s.size >= %s.pre", a, a, cur),
			)
			if c := intervalTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisFollowingSibling, xpath.AxisPrecedingSibling:
			if cur == "" {
				return "", unsupported("interval", "siblings of the document node")
			}
			a := newAlias()
			where = append(where, fmt.Sprintf("%s.parent = %s.parent", a, cur))
			if s.Axis == xpath.AxisFollowingSibling {
				where = append(where, fmt.Sprintf("%s.ordinal > %s.ordinal", a, cur))
			} else {
				where = append(where, fmt.Sprintf("%s.ordinal < %s.ordinal", a, cur))
			}
			where = append(where, fmt.Sprintf("%s.kind <> 'attr'", a))
			if c := intervalTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisSelf:
			if cur == "" {
				return "", unsupported("interval", "self step on the document node")
			}
			if c := intervalTestCond(cur, s.Test, false); c != "" {
				where = append(where, c)
			}
		default:
			return "", unsupported("interval", "axis "+s.Axis.String())
		}
		for _, pe := range s.Preds {
			c, err := intervalPred(pe, cur, opt)
			if err != nil {
				return "", err
			}
			where = append(where, c)
		}
	}

	sql := "SELECT DISTINCT " + cur + ".pre AS id, " + cur + ".value AS val FROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	return sql + " ORDER BY id", nil
}

func intervalTestCond(a string, t xpath.NodeTest, isAttr bool) string {
	switch t.Kind {
	case xpath.TestName:
		kind := "elem"
		if isAttr {
			kind = "attr"
		}
		return fmt.Sprintf("%s.name = %s AND %s.kind = '%s'", a, QuoteString(t.Name), a, kind)
	case xpath.TestWildcard:
		kind := "elem"
		if isAttr {
			kind = "attr"
		}
		return fmt.Sprintf("%s.kind = '%s'", a, kind)
	case xpath.TestText:
		return fmt.Sprintf("%s.kind = 'text'", a)
	case xpath.TestComment:
		return fmt.Sprintf("%s.kind = 'comment'", a)
	case xpath.TestNode:
		return fmt.Sprintf("%s.kind <> 'attr'", a)
	}
	return ""
}

func intervalPred(e xpath.Expr, cur string, opt IntervalOptions) (string, error) {
	switch e := e.(type) {
	case *xpath.BinaryExpr:
		switch e.Op {
		case "and", "or":
			l, err := intervalPred(e.L, cur, opt)
			if err != nil {
				return "", err
			}
			r, err := intervalPred(e.R, cur, opt)
			if err != nil {
				return "", err
			}
			return "(" + l + " " + strings.ToUpper(e.Op) + " " + r + ")", nil
		default:
			return intervalComparison(e, cur, opt)
		}
	case *xpath.NumberLit:
		return intervalPosition(cur, "=", numLiteral(e.Val), opt), nil
	case *xpath.PathOperand:
		chain, _, err := intervalPredChain(e.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + ")", nil
	case *xpath.FuncCall:
		return intervalPredFunc(e, cur, opt)
	}
	return "", unsupported("interval", fmt.Sprintf("predicate %T", e))
}

func intervalPredFunc(e *xpath.FuncCall, cur string, opt IntervalOptions) (string, error) {
	switch e.Name {
	case "not":
		if len(e.Args) != 1 {
			return "", unsupported("interval", "not() arity")
		}
		inner, err := intervalPred(e.Args[0], cur, opt)
		if err != nil {
			return "", err
		}
		return "NOT (" + inner + ")", nil
	case "true":
		return "1 = 1", nil
	case "false":
		return "1 = 0", nil
	case "contains", "starts-with":
		if len(e.Args) != 2 {
			return "", unsupported("interval", e.Name+"() arity")
		}
		lit, ok := e.Args[1].(*xpath.StringLit)
		if !ok {
			return "", unsupported("interval", e.Name+"() with a non-literal pattern")
		}
		pattern := "%" + likeEscapeMeta(lit.Val) + "%"
		if e.Name == "starts-with" {
			pattern = likeEscapeMeta(lit.Val) + "%"
		}
		cond := func(operand string) string {
			return fmt.Sprintf("%s LIKE %s ESCAPE '\\'", operand, QuoteString(pattern))
		}
		if po, ok := e.Args[0].(*xpath.PathOperand); ok {
			if len(po.Path.Steps) == 1 && po.Path.Steps[0].Axis == xpath.AxisSelf {
				return cond(cur + ".value"), nil
			}
			chain, valCol, err := intervalPredChain(po.Path, cur, opt)
			if err != nil {
				return "", err
			}
			return "EXISTS (" + chain + " AND " + cond(valCol) + ")", nil
		}
		return "", unsupported("interval", "non-path operand in string function")
	}
	return "", unsupported("interval", e.Name+"() in a predicate")
}

func intervalComparison(e *xpath.BinaryExpr, cur string, opt IntervalOptions) (string, error) {
	l, r, op := e.L, e.R, e.Op
	if isLiteral(l) && !isLiteral(r) {
		l, r = r, l
		op = flipXPathOp(op)
	}
	lit, err := literalSQL(r)
	if err != nil {
		return "", err
	}
	if op == "!=" {
		op = "<>"
	}
	switch lx := l.(type) {
	case *xpath.FuncCall:
		switch lx.Name {
		case "position":
			return intervalPosition(cur, op, lit, opt), nil
		case "count":
			if len(lx.Args) != 1 {
				return "", unsupported("interval", "count() arity")
			}
			po, ok := lx.Args[0].(*xpath.PathOperand)
			if !ok {
				return "", unsupported("interval", "count() of a non-path")
			}
			chain, _, err := intervalPredChain(po.Path, cur, opt)
			if err != nil {
				return "", err
			}
			countQ := strings.Replace(chain, "SELECT 1 ", "SELECT COUNT(*) ", 1)
			return "(" + countQ + ") " + op + " " + lit, nil
		case "string-length":
			if len(lx.Args) == 0 {
				return "LENGTH(" + cur + ".value) " + op + " " + lit, nil
			}
		}
		return "", unsupported("interval", lx.Name+"() comparison")
	case *xpath.PathOperand:
		if len(lx.Path.Steps) == 1 && lx.Path.Steps[0].Axis == xpath.AxisSelf {
			return cur + ".value " + op + " " + lit, nil
		}
		chain, valCol, err := intervalPredChain(lx.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + " AND " + valCol + " " + op + " " + lit + ")", nil
	}
	return "", unsupported("interval", fmt.Sprintf("comparison of %T", l))
}

func intervalPosition(cur, op, lit string, opt IntervalOptions) string {
	return fmt.Sprintf(
		"(SELECT COUNT(*) FROM %s s WHERE s.parent = %s.parent AND s.kind = %s.kind AND s.name = %s.name AND s.ordinal < %s.ordinal) + 1 %s %s",
		opt.Table, cur, cur, cur, cur, op, lit)
}

// intervalPredChain builds the EXISTS body for a relative predicate path
// and returns (subquery, value column).
func intervalPredChain(p *xpath.Path, cur string, opt IntervalOptions) (string, string, error) {
	if p.Absolute {
		return "", "", unsupported("interval", "absolute paths inside predicates")
	}
	var from []string
	var where []string
	prev := cur
	for i, s := range p.Steps {
		if len(s.Preds) > 0 {
			return "", "", unsupported("interval", "nested predicates")
		}
		a := fmt.Sprintf("%sq%d", cur, i+1)
		from = append(from, opt.Table+" "+a)
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisAttribute:
			where = append(where, fmt.Sprintf("%s.parent = %s.pre", a, prev))
			if c := intervalTestCond(a, s.Test, s.Axis == xpath.AxisAttribute); c != "" {
				where = append(where, c)
			}
		case xpath.AxisDescendant:
			where = append(where,
				fmt.Sprintf("%s.pre > %s.pre", a, prev),
				fmt.Sprintf("%s.pre <= %s.pre + %s.size", a, prev, prev),
			)
			if c := intervalTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
		case xpath.AxisParent:
			where = append(where, fmt.Sprintf("%s.pre = %s.parent", a, prev))
		default:
			return "", "", unsupported("interval", "axis "+s.Axis.String()+" inside predicates")
		}
		prev = a
	}
	if prev == cur {
		return "", "", unsupported("interval", "empty predicate path")
	}
	q := "SELECT 1 FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(where, " AND ")
	return q, prev + ".value", nil
}
