package translate

import (
	"strings"
	"testing"

	"repro/internal/xpath"
)

func TestDeweyAncestorTranslation(t *testing.T) {
	sql, err := Dewey(xpath.MustParse("//city/ancestor::person"), DeweyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The ancestor step reverses the prefix range: the current path
	// must fall inside the candidate ancestor's range.
	if !strings.Contains(sql, ".path > d2.path || '.'") || !strings.Contains(sql, ".path < d2.path || '/'") {
		t.Errorf("ancestor prefix conditions missing:\n%s", sql)
	}
}

func TestEdgeCatalogPredicatePlacement(t *testing.T) {
	c := NewPathCatalog()
	for _, p := range []string{
		"site", "site/regions", "site/regions/africa",
		"site/regions/africa/item", "site/regions/africa/item/name",
		"site/regions/africa/item/name/#text",
	} {
		c.Add(p)
	}
	sql, err := Edge(xpath.MustParse("//item[name='x']/name"), EdgeOptions{MaxDepth: 8, Catalog: c})
	if err != nil {
		t.Fatal(err)
	}
	// The predicate must anchor at the item hop, not the final name hop:
	// the EXISTS subquery probes from the item alias (e4).
	if !strings.Contains(sql, "e4p1.source = e4.target") {
		t.Errorf("predicate anchored at the wrong hop:\n%s", sql)
	}
	if !strings.Contains(sql, "e5.target AS id") {
		t.Errorf("result should come from the trailing name hop:\n%s", sql)
	}
}

func TestEdgeCatalogNoMatchStillValid(t *testing.T) {
	c := NewPathCatalog()
	c.Add("site")
	sql, err := Edge(xpath.MustParse("//nonexistent"), EdgeOptions{MaxDepth: 8, Catalog: c})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "nomatch") {
		t.Errorf("expected an impossible chain:\n%s", sql)
	}
}

func TestIntervalChildViaRegionTranslation(t *testing.T) {
	probe, err := Interval(xpath.MustParse("/a/b"), IntervalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	region, err := Interval(xpath.MustParse("/a/b"), IntervalOptions{ChildViaRegion: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(probe, "a2.parent = a1.pre") {
		t.Errorf("probe form missing parent join:\n%s", probe)
	}
	if !strings.Contains(region, "a2.level = a1.level + 1") || !strings.Contains(region, "a2.pre <= a1.pre + a1.size") {
		t.Errorf("region form missing region predicates:\n%s", region)
	}
	// The first step from the document root always uses the parent
	// column (there is no enclosing region row to range over).
	if !strings.Contains(region, "a1.parent = 0") {
		t.Errorf("root step should stay a parent probe:\n%s", region)
	}
}

func TestTranslationsQuoteValues(t *testing.T) {
	// Value literals with quotes must be escaped in every translator.
	q := xpath.MustParse(`/a/b[c="o'clock"]`)
	for name, f := range map[string]func() (string, error){
		"edge":     func() (string, error) { return Edge(q, EdgeOptions{MaxDepth: 4}) },
		"interval": func() (string, error) { return Interval(q, IntervalOptions{}) },
		"dewey":    func() (string, error) { return Dewey(q, DeweyOptions{}) },
	} {
		sql, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sql, "'o''clock'") {
			t.Errorf("%s: quote escaping missing:\n%s", name, sql)
		}
	}
}

func TestContainsEscapesLikeMeta(t *testing.T) {
	q := xpath.MustParse(`/a/b[contains(., '50%_x')]`)
	sql, err := Interval(q, IntervalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, `50\%\_x`) || !strings.Contains(sql, `ESCAPE '\'`) {
		t.Errorf("LIKE metacharacters not escaped:\n%s", sql)
	}
}

func TestAttrDescendantPattern(t *testing.T) {
	// //@id (expanded by the xpath parser) must translate everywhere
	// that supports it.
	q := xpath.MustParse("//@id")
	if _, err := Edge(q, EdgeOptions{MaxDepth: 4}); err != nil {
		t.Errorf("edge //@id: %v", err)
	}
	if _, err := Interval(q, IntervalOptions{}); err != nil {
		t.Errorf("interval //@id: %v", err)
	}
	if _, err := Dewey(q, DeweyOptions{}); err != nil {
		t.Errorf("dewey //@id: %v", err)
	}
}
