// Package translate compiles XPath queries into SQL over each shredding
// scheme's relational layout. It is the paper's core subject: the same
// navigational query becomes self-joins on the Edge table, per-label
// joins on the Binary tables, region-predicate joins on the interval
// (pre/post) encoding, prefix-range joins on Dewey paths, column
// references on the DTD-inlined schema, and column conjunctions on the
// Universal table.
//
// Every translation returns a SELECT whose result has two columns:
//
//	id  — the matched node's identifier (its pre-order rank; for the
//	      inlined schema, the hosting row's id)
//	val — the node's string value when the scheme stores it inline,
//	      NULL otherwise
//
// ordered by document order.
package translate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/xpath"
)

// QuoteString renders a SQL string literal.
func QuoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// QuoteIdent renders a SQL identifier. It always quotes: generated
// column names come from XML (arbitrary characters, possible keyword
// collisions like <from>).
func QuoteIdent(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// likeEscapeMeta escapes LIKE metacharacters in a literal fragment so it
// matches itself; the generated predicates use ESCAPE '\'.
func likeEscapeMeta(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `%`, `\%`)
	s = strings.ReplaceAll(s, `_`, `\_`)
	return s
}

// numLiteral renders an XPath number as a SQL literal, preferring the
// integer form.
func numLiteral(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// SanitizeName converts an XML name to a SQL-identifier-safe fragment
// (used in Binary/Inline table names).
func SanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

// ErrUnsupported marks query constructs a given scheme cannot translate;
// the experiment harness reports these rather than crashing.
type ErrUnsupported struct {
	Scheme string
	What   string
}

// Error implements the error interface.
func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("translate: %s scheme does not support %s", e.Scheme, e.What)
}

func unsupported(scheme, what string) error {
	return &ErrUnsupported{Scheme: scheme, What: what}
}

// ---------------------------------------------------------------------------
// Path catalog

// PathCatalog records the concrete label paths present in a loaded
// document (e.g. "site/people/person/@id"). The Binary and Universal
// schemes consult it to expand descendant steps into concrete label
// chains, playing the role of the path index the tutorial literature
// attaches to partitioned storage.
type PathCatalog struct {
	set   map[string]bool
	paths []string
}

// NewPathCatalog returns an empty catalog.
func NewPathCatalog() *PathCatalog {
	return &PathCatalog{set: map[string]bool{}}
}

// Add records one label path. Segments are '/'-separated; attribute
// leaves are "@name" and text leaves "#text".
func (c *PathCatalog) Add(path string) {
	if !c.set[path] {
		c.set[path] = true
		c.paths = append(c.paths, path)
	}
}

// Paths returns all recorded paths, sorted.
func (c *PathCatalog) Paths() []string {
	out := append([]string{}, c.paths...)
	sort.Strings(out)
	return out
}

// Len reports the number of distinct paths.
func (c *PathCatalog) Len() int { return len(c.paths) }

// stepPattern is the catalog-matching view of one XPath step.
type stepPattern struct {
	// descendant allows any (non-empty) gap of element segments before
	// the match.
	descendant bool
	// seg matches one segment: element name, "@name", "#text", or "*".
	seg string
}

// patternOf converts parsed steps to catalog patterns. Only the child,
// descendant and attribute axes plus text() map to catalog segments.
func patternOf(steps []xpath.Step, scheme string) ([]stepPattern, error) {
	var out []stepPattern
	for _, s := range steps {
		p := stepPattern{}
		switch s.Axis {
		case xpath.AxisChild:
		case xpath.AxisDescendant:
			p.descendant = true
		case xpath.AxisAttribute:
			if s.Test.Kind == xpath.TestName {
				p.seg = "@" + s.Test.Name
			} else {
				p.seg = "@*"
			}
			out = append(out, p)
			continue
		default:
			return nil, unsupported(scheme, "axis "+s.Axis.String())
		}
		switch s.Test.Kind {
		case xpath.TestName:
			p.seg = s.Test.Name
		case xpath.TestWildcard:
			p.seg = "*"
		case xpath.TestText:
			p.seg = "#text"
		default:
			return nil, unsupported(scheme, "node test in this position")
		}
		out = append(out, p)
	}
	return out, nil
}

// Match finds every catalog path matching the pattern and returns, for
// each, the path segments plus the segment index each step matched.
type CatalogMatch struct {
	Segments []string
	StepSeg  []int // step i matched Segments[StepSeg[i]]
}

// Expand matches the pattern against every catalog path.
func (c *PathCatalog) Expand(pat []stepPattern) []CatalogMatch {
	var out []CatalogMatch
	for _, p := range c.Paths() {
		segs := strings.Split(p, "/")
		if m, ok := matchSegments(segs, pat); ok {
			out = append(out, CatalogMatch{Segments: segs, StepSeg: m})
		}
	}
	return out
}

// matchSegments matches the full pattern against the full path (the
// last pattern step must match the last segment).
func matchSegments(segs []string, pat []stepPattern) ([]int, bool) {
	// Dynamic recursion with memo-free small sizes.
	assign := make([]int, len(pat))
	var rec func(si, pi int) bool
	rec = func(si, pi int) bool {
		if pi == len(pat) {
			return si == len(segs)
		}
		p := pat[pi]
		if p.descendant {
			// si is the first unconsumed segment, already at least one
			// level below the previous match, so the scan starts at si.
			for s := si; s < len(segs); s++ {
				if segMatch(segs[s], p.seg) {
					assign[pi] = s
					if rec(s+1, pi+1) {
						return true
					}
				}
			}
			return false
		}
		if si >= len(segs) || !segMatch(segs[si], p.seg) {
			return false
		}
		assign[pi] = si
		return rec(si+1, pi+1)
	}
	if !rec(0, 0) {
		return nil, false
	}
	return assign, true
}

func segMatch(seg, pat string) bool {
	switch pat {
	case "*":
		return !strings.HasPrefix(seg, "@") && seg != "#text"
	case "@*":
		return strings.HasPrefix(seg, "@")
	default:
		return seg == pat
	}
}
