package translate

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// BinaryOptions parameterizes the Binary (attribute-partitioned)
// translation. The edge table is split by label: element edges with
// label L live in ElemTable(L), attribute edges in AttrTable(L), text
// edges in TextTable. Every partition has columns
// (source, ordinal, target, value).
type BinaryOptions struct {
	// Catalog lists the concrete label paths of the loaded documents;
	// it drives descendant-step expansion (the path index role).
	Catalog *PathCatalog
	// ElemTable maps an element label to its partition's table name
	// (empty result means the label never occurred: no rows).
	ElemTable func(label string) (string, bool)
	// AttrTable maps an attribute label to its partition.
	AttrTable func(label string) (string, bool)
	// TextTable is the text-node partition.
	TextTable string
}

// Binary translates XPath to SQL over the partitioned layout. Because a
// partition fixes the label, every step with a name test touches only
// its own (smaller) table; wildcard and descendant steps are expanded
// against the path catalog into concrete label chains.
func Binary(p *xpath.Path, opt BinaryOptions) (string, error) {
	if opt.Catalog == nil || opt.ElemTable == nil || opt.AttrTable == nil {
		return "", fmt.Errorf("translate: binary options missing catalog or table maps")
	}
	if opt.TextTable == "" {
		opt.TextTable = "bt_text"
	}
	if !p.Absolute {
		return "", unsupported("binary", "relative paths")
	}
	if len(p.Steps) == 0 {
		return "", unsupported("binary", "the bare document path /")
	}
	pat, err := patternOf(p.Steps, "binary")
	if err != nil {
		return "", err
	}
	matches := opt.Catalog.Expand(pat)
	if len(matches) == 0 {
		// No concrete path matches: an empty but valid query.
		return "SELECT 0 AS id, NULL AS val WHERE 1 = 0", nil
	}
	var parts []string
	for _, m := range matches {
		q, err := binaryChainSQL(p.Steps, m, opt)
		if err != nil {
			return "", err
		}
		parts = append(parts, q)
	}
	if len(parts) == 1 {
		return parts[0] + " ORDER BY id", nil
	}
	return "SELECT DISTINCT id, val FROM (" + strings.Join(parts, " UNION ALL ") + ") u ORDER BY id", nil
}

// binaryTableFor resolves the partition for one path segment.
func binaryTableFor(seg string, opt BinaryOptions) (string, bool) {
	switch {
	case seg == "#text":
		return opt.TextTable, true
	case strings.HasPrefix(seg, "@"):
		return opt.AttrTable(seg[1:])
	default:
		return opt.ElemTable(seg)
	}
}

// binaryChainSQL renders one concrete label chain as a join over the
// per-label partitions. Every segment of the concrete path becomes one
// hop; predicates of the original steps attach at their matched segment.
func binaryChainSQL(steps []xpath.Step, m CatalogMatch, opt BinaryOptions) (string, error) {
	// predsAt[k] collects predicates anchored at segment k.
	predsAt := make(map[int][]xpath.Expr)
	pi := 0
	for _, s := range steps {
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisDescendant, xpath.AxisAttribute:
			seg := m.StepSeg[pi]
			predsAt[seg] = append(predsAt[seg], s.Preds...)
			pi++
		default:
			return "", unsupported("binary", "axis "+s.Axis.String())
		}
	}

	var from []string
	var where []string
	aliases := make([]string, len(m.Segments))
	for k, seg := range m.Segments {
		tbl, ok := binaryTableFor(seg, opt)
		if !ok {
			return "SELECT 0 AS id, NULL AS val WHERE 1 = 0", nil
		}
		a := fmt.Sprintf("b%d", k+1)
		aliases[k] = a
		from = append(from, tbl+" "+a)
		src := "0"
		if k > 0 {
			src = aliases[k-1] + ".target"
		}
		where = append(where, fmt.Sprintf("%s.source = %s", a, src))
	}
	for k := range m.Segments {
		for _, pe := range predsAt[k] {
			c, err := binaryPred(pe, aliases[k], m.Segments[k], opt)
			if err != nil {
				return "", err
			}
			where = append(where, c)
		}
	}
	last := aliases[len(aliases)-1]
	sql := "SELECT " + last + ".target AS id, " + last + ".value AS val FROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	return sql, nil
}

// binaryPred translates one predicate anchored at alias `cur`, whose
// label is curSeg (needed to resolve child partitions).
func binaryPred(e xpath.Expr, cur, curSeg string, opt BinaryOptions) (string, error) {
	switch e := e.(type) {
	case *xpath.BinaryExpr:
		switch e.Op {
		case "and", "or":
			l, err := binaryPred(e.L, cur, curSeg, opt)
			if err != nil {
				return "", err
			}
			r, err := binaryPred(e.R, cur, curSeg, opt)
			if err != nil {
				return "", err
			}
			return "(" + l + " " + strings.ToUpper(e.Op) + " " + r + ")", nil
		default:
			return binaryComparison(e, cur, curSeg, opt)
		}
	case *xpath.NumberLit:
		// Positional within a partition: rank among same-label siblings.
		tbl, ok := binaryTableFor(curSeg, opt)
		if !ok {
			return "1 = 0", nil
		}
		return fmt.Sprintf(
			"(SELECT COUNT(*) FROM %s s WHERE s.source = %s.source AND s.ordinal < %s.ordinal) + 1 = %s",
			tbl, cur, cur, numLiteral(e.Val)), nil
	case *xpath.PathOperand:
		chain, _, err := binaryPredChain(e.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + ")", nil
	case *xpath.FuncCall:
		switch e.Name {
		case "not":
			if len(e.Args) != 1 {
				return "", unsupported("binary", "not() arity")
			}
			inner, err := binaryPred(e.Args[0], cur, curSeg, opt)
			if err != nil {
				return "", err
			}
			return "NOT (" + inner + ")", nil
		case "true":
			return "1 = 1", nil
		case "false":
			return "1 = 0", nil
		case "contains", "starts-with":
			if len(e.Args) != 2 {
				return "", unsupported("binary", e.Name+"() arity")
			}
			lit, ok := e.Args[1].(*xpath.StringLit)
			if !ok {
				return "", unsupported("binary", e.Name+"() with a non-literal pattern")
			}
			pattern := "%" + likeEscapeMeta(lit.Val) + "%"
			if e.Name == "starts-with" {
				pattern = likeEscapeMeta(lit.Val) + "%"
			}
			cond := func(operand string) string {
				return fmt.Sprintf("%s LIKE %s ESCAPE '\\'", operand, QuoteString(pattern))
			}
			if po, ok := e.Args[0].(*xpath.PathOperand); ok {
				if len(po.Path.Steps) == 1 && po.Path.Steps[0].Axis == xpath.AxisSelf {
					return cond(cur + ".value"), nil
				}
				chain, valCol, err := binaryPredChain(po.Path, cur, opt)
				if err != nil {
					return "", err
				}
				return "EXISTS (" + chain + " AND " + cond(valCol) + ")", nil
			}
			return "", unsupported("binary", "non-path operand in string function")
		}
		return "", unsupported("binary", e.Name+"() in a predicate")
	}
	return "", unsupported("binary", fmt.Sprintf("predicate %T", e))
}

func binaryComparison(e *xpath.BinaryExpr, cur, curSeg string, opt BinaryOptions) (string, error) {
	l, r, op := e.L, e.R, e.Op
	if isLiteral(l) && !isLiteral(r) {
		l, r = r, l
		op = flipXPathOp(op)
	}
	lit, err := literalSQL(r)
	if err != nil {
		return "", err
	}
	if op == "!=" {
		op = "<>"
	}
	switch lx := l.(type) {
	case *xpath.FuncCall:
		switch lx.Name {
		case "position":
			tbl, ok := binaryTableFor(curSeg, opt)
			if !ok {
				return "1 = 0", nil
			}
			return fmt.Sprintf(
				"(SELECT COUNT(*) FROM %s s WHERE s.source = %s.source AND s.ordinal < %s.ordinal) + 1 %s %s",
				tbl, cur, cur, op, lit), nil
		case "count":
			if len(lx.Args) != 1 {
				return "", unsupported("binary", "count() arity")
			}
			po, ok := lx.Args[0].(*xpath.PathOperand)
			if !ok {
				return "", unsupported("binary", "count() of a non-path")
			}
			chain, _, err := binaryPredChain(po.Path, cur, opt)
			if err != nil {
				return "", err
			}
			countQ := strings.Replace(chain, "SELECT 1 ", "SELECT COUNT(*) ", 1)
			return "(" + countQ + ") " + op + " " + lit, nil
		}
		return "", unsupported("binary", lx.Name+"() comparison")
	case *xpath.PathOperand:
		if len(lx.Path.Steps) == 1 && lx.Path.Steps[0].Axis == xpath.AxisSelf {
			return cur + ".value " + op + " " + lit, nil
		}
		chain, valCol, err := binaryPredChain(lx.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + " AND " + valCol + " " + op + " " + lit + ")", nil
	}
	return "", unsupported("binary", fmt.Sprintf("comparison of %T", l))
}

// binaryPredChain builds the EXISTS body for a relative predicate path
// of child/attribute steps with name tests (each step knows its
// partition directly).
func binaryPredChain(p *xpath.Path, cur string, opt BinaryOptions) (string, string, error) {
	if p.Absolute {
		return "", "", unsupported("binary", "absolute paths inside predicates")
	}
	var from []string
	var where []string
	prev := cur
	for i, s := range p.Steps {
		if len(s.Preds) > 0 {
			return "", "", unsupported("binary", "nested predicates")
		}
		var tbl string
		var ok bool
		switch {
		case s.Axis == xpath.AxisChild && s.Test.Kind == xpath.TestName:
			tbl, ok = opt.ElemTable(s.Test.Name)
		case s.Axis == xpath.AxisChild && s.Test.Kind == xpath.TestText:
			tbl, ok = opt.TextTable, true
		case s.Axis == xpath.AxisAttribute && s.Test.Kind == xpath.TestName:
			tbl, ok = opt.AttrTable(s.Test.Name)
		default:
			return "", "", unsupported("binary", "predicate step "+s.Axis.String())
		}
		if !ok {
			return "SELECT 1 WHERE 1 = 0", "NULL", nil
		}
		a := fmt.Sprintf("%sp%d", cur, i+1)
		from = append(from, tbl+" "+a)
		where = append(where, fmt.Sprintf("%s.source = %s.target", a, prev))
		prev = a
	}
	if prev == cur {
		return "", "", unsupported("binary", "empty predicate path")
	}
	q := "SELECT 1 FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(where, " AND ")
	return q, prev + ".value", nil
}
