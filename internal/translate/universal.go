package translate

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// UniversalOptions parameterizes the Universal-table translation.
//
// The universal table is the classic strawman: one denormalized
// relation with a pair of columns per label (id_<l>, val_<l>) and one
// row per leaf node, carrying the ids/values of every node on the
// root-to-leaf path. Simple path queries become single-table column
// conjunctions; the price is massive redundancy (experiment T1) and
// awkward branching predicates (self-joins below).
type UniversalOptions struct {
	Table   string
	Catalog *PathCatalog
	// Column maps a path segment ("person", "@id", "#text") to the
	// sanitized column suffix; labels never seen return false.
	Column func(seg string) (string, bool)
}

func (o *UniversalOptions) defaults() {
	if o.Table == "" {
		o.Table = "universal"
	}
}

// Universal translates XPath to SQL over the universal table.
func Universal(p *xpath.Path, opt UniversalOptions) (string, error) {
	opt.defaults()
	if opt.Catalog == nil || opt.Column == nil {
		return "", fmt.Errorf("translate: universal options missing catalog or column map")
	}
	if !p.Absolute {
		return "", unsupported("universal", "relative paths")
	}
	if len(p.Steps) == 0 {
		return "", unsupported("universal", "the bare document path /")
	}
	pat, err := patternOf(p.Steps, "universal")
	if err != nil {
		return "", err
	}
	matches := opt.Catalog.Expand(pat)
	if len(matches) == 0 {
		return "SELECT 0 AS id, NULL AS val WHERE 1 = 0", nil
	}
	var parts []string
	seen := map[string]bool{}
	for _, m := range matches {
		q, err := universalChainSQL(p.Steps, m, opt)
		if err != nil {
			return "", err
		}
		if !seen[q] {
			seen[q] = true
			parts = append(parts, q)
		}
	}
	if len(parts) == 1 {
		return "SELECT DISTINCT id, val FROM (" + parts[0] + ") u ORDER BY id", nil
	}
	return "SELECT DISTINCT id, val FROM (" + strings.Join(parts, " UNION ALL ") + ") u ORDER BY id", nil
}

func universalCol(seg, kind string, opt UniversalOptions) (string, bool) {
	suffix, ok := opt.Column(seg)
	if !ok {
		return "", false
	}
	return kind + "_" + suffix, true
}

// universalChainSQL renders one concrete path match: non-null checks for
// every segment's id column, predicates via value columns or self-joins.
func universalChainSQL(steps []xpath.Step, m CatalogMatch, opt UniversalOptions) (string, error) {
	u := "u0"
	var where []string
	for _, seg := range m.Segments {
		idCol, ok := universalCol(seg, "id", opt)
		if !ok {
			return "SELECT 0 AS id, NULL AS val WHERE 1 = 0", nil
		}
		where = append(where, fmt.Sprintf("%s.%s IS NOT NULL", u, QuoteIdent(idCol)))
	}

	joins := []string{opt.Table + " " + u}
	joinN := 0

	pi := 0
	for _, s := range steps {
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisDescendant, xpath.AxisAttribute:
		default:
			return "", unsupported("universal", "axis "+s.Axis.String())
		}
		seg := m.Segments[m.StepSeg[pi]]
		for _, pe := range s.Preds {
			cond, extraJoin, err := universalPred(pe, u, seg, &joinN, opt)
			if err != nil {
				return "", err
			}
			joins = append(joins, extraJoin...)
			where = append(where, cond)
		}
		pi++
	}

	lastSeg := m.Segments[len(m.Segments)-1]
	idCol, _ := universalCol(lastSeg, "id", opt)
	valCol, ok := universalCol(lastSeg, "val", opt)
	if !ok {
		valCol = idCol
	}
	sql := fmt.Sprintf("SELECT %s.%s AS id, %s.%s AS val FROM %s",
		u, QuoteIdent(idCol), u, QuoteIdent(valCol), strings.Join(joins, ", "))
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	return sql, nil
}

// universalPred translates a predicate anchored at the element whose
// label is anchorSeg on row alias u. Predicates over sibling branches
// need a self-join: another universal row sharing the anchor's id.
func universalPred(e xpath.Expr, u, anchorSeg string, joinN *int, opt UniversalOptions) (string, []string, error) {
	switch e := e.(type) {
	case *xpath.BinaryExpr:
		switch e.Op {
		case "and", "or":
			l, jl, err := universalPred(e.L, u, anchorSeg, joinN, opt)
			if err != nil {
				return "", nil, err
			}
			r, jr, err := universalPred(e.R, u, anchorSeg, joinN, opt)
			if err != nil {
				return "", nil, err
			}
			if e.Op == "or" && (len(jl) > 0 || len(jr) > 0) {
				// A disjunct with its own join would wrongly constrain
				// the other branch.
				return "", nil, unsupported("universal", "or over branching predicates")
			}
			return "(" + l + " " + strings.ToUpper(e.Op) + " " + r + ")", append(jl, jr...), nil
		default:
			return universalComparison(e, u, anchorSeg, joinN, opt)
		}
	case *xpath.PathOperand:
		cond, joins, _, err := universalPredTarget(e.Path, u, anchorSeg, joinN, opt)
		if err != nil {
			return "", nil, err
		}
		return cond, joins, nil
	case *xpath.FuncCall:
		switch e.Name {
		case "not":
			if len(e.Args) != 1 {
				return "", nil, unsupported("universal", "not() arity")
			}
			inner, joins, err := universalPred(e.Args[0], u, anchorSeg, joinN, opt)
			if err != nil {
				return "", nil, err
			}
			if len(joins) > 0 {
				return "", nil, unsupported("universal", "not() over branching predicates")
			}
			return "NOT (" + inner + ")", nil, nil
		case "true":
			return "1 = 1", nil, nil
		case "false":
			return "1 = 0", nil, nil
		case "contains", "starts-with":
			if len(e.Args) != 2 {
				return "", nil, unsupported("universal", e.Name+"() arity")
			}
			lit, ok := e.Args[1].(*xpath.StringLit)
			if !ok {
				return "", nil, unsupported("universal", e.Name+"() with a non-literal pattern")
			}
			pattern := "%" + likeEscapeMeta(lit.Val) + "%"
			if e.Name == "starts-with" {
				pattern = likeEscapeMeta(lit.Val) + "%"
			}
			po, ok := e.Args[0].(*xpath.PathOperand)
			if !ok {
				return "", nil, unsupported("universal", "non-path operand in string function")
			}
			exist, joins, valExpr, err := universalPredTarget(po.Path, u, anchorSeg, joinN, opt)
			if err != nil {
				return "", nil, err
			}
			return fmt.Sprintf("(%s AND %s LIKE %s ESCAPE '\\')", exist, valExpr, QuoteString(pattern)), joins, nil
		}
		return "", nil, unsupported("universal", e.Name+"() in a predicate")
	case *xpath.NumberLit:
		return "", nil, unsupported("universal", "positional predicates (no order columns)")
	}
	return "", nil, unsupported("universal", fmt.Sprintf("predicate %T", e))
}

func universalComparison(e *xpath.BinaryExpr, u, anchorSeg string, joinN *int, opt UniversalOptions) (string, []string, error) {
	l, r, op := e.L, e.R, e.Op
	if isLiteral(l) && !isLiteral(r) {
		l, r = r, l
		op = flipXPathOp(op)
	}
	lit, err := literalSQL(r)
	if err != nil {
		return "", nil, err
	}
	if op == "!=" {
		op = "<>"
	}
	po, ok := l.(*xpath.PathOperand)
	if !ok {
		return "", nil, unsupported("universal", fmt.Sprintf("comparison of %T", l))
	}
	exist, joins, valExpr, err := universalPredTarget(po.Path, u, anchorSeg, joinN, opt)
	if err != nil {
		return "", nil, err
	}
	return "(" + exist + " AND " + valExpr + " " + op + " " + lit + ")", joins, nil
}

// universalPredTarget resolves a relative predicate path to a value
// expression, adding a self-join on the anchor element's id (the sibling
// branch lives in a different leaf row). Returns (existence condition,
// joins, value expression).
func universalPredTarget(p *xpath.Path, u, anchorSeg string, joinN *int, opt UniversalOptions) (string, []string, string, error) {
	if p.Absolute {
		return "", nil, "", unsupported("universal", "absolute paths inside predicates")
	}
	anchorID, ok := universalCol(anchorSeg, "id", opt)
	if !ok {
		return "1 = 0", nil, "NULL", nil
	}
	*joinN++
	v := fmt.Sprintf("v%d", *joinN)
	join := []string{opt.Table + " " + v}
	conds := []string{fmt.Sprintf("%s.%s = %s.%s", v, QuoteIdent(anchorID), u, QuoteIdent(anchorID))}
	lastSeg := ""
	for _, s := range p.Steps {
		if len(s.Preds) > 0 {
			return "", nil, "", unsupported("universal", "nested predicates")
		}
		var seg string
		switch {
		case s.Axis == xpath.AxisChild && s.Test.Kind == xpath.TestName:
			seg = s.Test.Name
		case s.Axis == xpath.AxisAttribute && s.Test.Kind == xpath.TestName:
			seg = "@" + s.Test.Name
		case s.Axis == xpath.AxisChild && s.Test.Kind == xpath.TestText:
			seg = "#text"
		default:
			return "", nil, "", unsupported("universal", "predicate step "+s.Axis.String())
		}
		idCol, ok := universalCol(seg, "id", opt)
		if !ok {
			return "1 = 0", nil, "NULL", nil
		}
		conds = append(conds, fmt.Sprintf("%s.%s IS NOT NULL", v, QuoteIdent(idCol)))
		lastSeg = seg
	}
	if lastSeg == "" {
		return "", nil, "", unsupported("universal", "empty predicate path")
	}
	valCol, ok := universalCol(lastSeg, "val", opt)
	valExpr := "NULL"
	if ok {
		valExpr = v + "." + QuoteIdent(valCol)
	}
	return strings.Join(conds, " AND "), join, valExpr, nil
}
