package translate

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

func TestQuoteHelpers(t *testing.T) {
	if QuoteString("o'clock") != "'o''clock'" {
		t.Errorf("QuoteString: %q", QuoteString("o'clock"))
	}
	if QuoteIdent("from") != `"from"` {
		t.Errorf("QuoteIdent must always quote: %q", QuoteIdent("from"))
	}
	if QuoteIdent(`we"ird`) != `"we""ird"` {
		t.Errorf("QuoteIdent escaping: %q", QuoteIdent(`we"ird`))
	}
	if SanitizeName("Mixed-Case.Name:x") != "mixed_case_name_x" {
		t.Errorf("SanitizeName: %q", SanitizeName("Mixed-Case.Name:x"))
	}
	if likeEscapeMeta(`50%_a\b`) != `50\%\_a\\b` {
		t.Errorf("likeEscapeMeta: %q", likeEscapeMeta(`50%_a\b`))
	}
	if numLiteral(3) != "3" || numLiteral(2.5) != "2.5" {
		t.Errorf("numLiteral: %s %s", numLiteral(3), numLiteral(2.5))
	}
}

func TestPathCatalogExpand(t *testing.T) {
	c := NewPathCatalog()
	for _, p := range []string{
		"site",
		"site/people",
		"site/people/person",
		"site/people/person/name",
		"site/people/person/name/#text",
		"site/people/person/@id",
		"site/regions",
		"site/regions/africa",
		"site/regions/africa/item",
		"site/regions/africa/item/name",
	} {
		c.Add(p)
	}
	c.Add("site/people") // duplicates are ignored
	if c.Len() != 10 {
		t.Fatalf("catalog len = %d", c.Len())
	}
	expand := func(q string) []string {
		pat, err := patternOf(xpath.MustParse(q).Steps, "test")
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var out []string
		for _, m := range c.Expand(pat) {
			out = append(out, strings.Join(m.Segments, "/"))
		}
		return out
	}
	if got := expand("//name"); len(got) != 2 {
		t.Errorf("//name -> %v", got)
	}
	if got := expand("/site/people/person/name"); len(got) != 1 || got[0] != "site/people/person/name" {
		t.Errorf("exact path -> %v", got)
	}
	if got := expand("//person/@id"); len(got) != 1 {
		t.Errorf("//person/@id -> %v", got)
	}
	if got := expand("/site/*/person"); len(got) != 1 {
		t.Errorf("wildcard -> %v", got)
	}
	if got := expand("//bogus"); got != nil {
		t.Errorf("//bogus -> %v", got)
	}
	if got := expand("//person//name"); len(got) != 1 {
		t.Errorf("//person//name -> %v", got)
	}
	// StepSeg mapping points each step at its matched segment.
	pat, _ := patternOf(xpath.MustParse("//item/name").Steps, "test")
	ms := c.Expand(pat)
	if len(ms) != 1 || ms[0].Segments[ms[0].StepSeg[0]] != "item" || ms[0].Segments[ms[0].StepSeg[1]] != "name" {
		t.Errorf("StepSeg mapping: %+v", ms)
	}
}

func TestEdgeTranslationShape(t *testing.T) {
	sql, err := Edge(xpath.MustParse("/site/people/person[@id='p1']/name"), EdgeOptions{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"e1.source = 0", "e1.name = 'site'",
		"e2.source = e1.target", "e3.source = e2.target",
		"EXISTS", "'p1'", "ORDER BY id",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("edge SQL missing %q:\n%s", frag, sql)
		}
	}
	// A descendant step becomes a UNION whose size tracks MaxDepth.
	shallow, err := Edge(xpath.MustParse("//name"), EdgeOptions{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Edge(xpath.MustParse("//name"), EdgeOptions{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	cs, cd := strings.Count(shallow, "UNION ALL"), strings.Count(deep, "UNION ALL")
	if cs != 3 || cd != 9 {
		t.Errorf("union sizes: depth4 %d (want 3), depth10 %d (want 9)", cs, cd)
	}
	// Expansion explosion is bounded.
	if _, err := Edge(xpath.MustParse("//a//b//c"), EdgeOptions{MaxDepth: 16, MaxExpansions: 10}); err == nil {
		t.Error("expected expansion cap error")
	}
}

func TestIntervalTranslationShape(t *testing.T) {
	sql, err := Interval(xpath.MustParse("//open_auction//increase"), IntervalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Descendants are single range predicates, not unions.
	if strings.Contains(sql, "UNION") {
		t.Error("interval descendant must not expand to unions")
	}
	for _, frag := range []string{"a2.pre > a1.pre", "a2.pre <= a1.pre + a1.size"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("interval SQL missing %q:\n%s", frag, sql)
		}
	}
	// Ancestor axis.
	sql, err = Interval(xpath.MustParse("/a/b/ancestor::a"), IntervalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "a3.pre + a3.size >= a2.pre") {
		t.Errorf("ancestor region predicate missing:\n%s", sql)
	}
}

func TestDeweyTranslationShape(t *testing.T) {
	sql, err := Dewey(xpath.MustParse("/site//item"), DeweyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"d2.path > d1.path || '.'",
		"d2.path < d1.path || '/'",
		"ORDER BY dpath",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("dewey SQL missing %q:\n%s", frag, sql)
		}
	}
	// Child steps probe the parent path, not a range.
	sql, err = Dewey(xpath.MustParse("/site/people"), DeweyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "d2.parent = d1.path") {
		t.Errorf("dewey child join missing:\n%s", sql)
	}
}

func TestUnsupportedConstructs(t *testing.T) {
	var unsup *ErrUnsupported
	if _, err := Edge(xpath.MustParse("a/b"), EdgeOptions{}); !errors.As(err, &unsup) {
		t.Errorf("relative path: %v", err)
	}
	if _, err := Interval(xpath.MustParse("/"), IntervalOptions{}); !errors.As(err, &unsup) {
		t.Errorf("bare document: %v", err)
	}
	c := NewPathCatalog()
	c.Add("a")
	col := func(seg string) (string, bool) { return SanitizeName(seg), true }
	if _, err := Universal(xpath.MustParse("/a[1]"), UniversalOptions{Catalog: c, Column: col}); !errors.As(err, &unsup) {
		t.Errorf("universal positional: %v", err)
	}
}

func TestInlineMappingStructure(t *testing.T) {
	d, err := dtd.Parse(`
<!ELEMENT root (meta?, entry*)>
<!ELEMENT meta (created, owner)>
<!ELEMENT created (#PCDATA)>
<!ELEMENT owner (#PCDATA)>
<!ATTLIST owner role CDATA #IMPLIED>
<!ELEMENT entry (title, note?)>
<!ATTLIST entry id ID #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT note (#PCDATA)>
`, "root")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildInlineMapping(dtd.BuildGraph(d))
	if err != nil {
		t.Fatal(err)
	}
	// root and entry get relations; meta/created/owner/title/note inline.
	if len(m.Order) != 2 {
		t.Fatalf("relations = %v", m.Order)
	}
	root := m.Relations["root"]
	for _, key := range []string{"meta", "meta.created", "meta.owner", "meta.owner.@role"} {
		if _, ok := root.ByKey[key]; !ok {
			t.Errorf("root relation missing column %q (has %v)", key, keysOf(root))
		}
	}
	entry := m.Relations["entry"]
	for _, key := range []string{"@id", "title", "note"} {
		if _, ok := entry.ByKey[key]; !ok {
			t.Errorf("entry relation missing column %q (has %v)", key, keysOf(entry))
		}
	}
	// meta is presence-typed (no text), created is text-typed.
	if root.ByKey["meta"].Kind != ColPresence {
		t.Error("meta should be a presence column")
	}
	if root.ByKey["meta.created"].Kind != ColText {
		t.Error("meta.created should be a text column")
	}
	// Placements know every spot an element occupies.
	if len(m.Placements["title"]) != 1 || m.Placements["title"][0].Rel != entry {
		t.Errorf("title placements = %+v", m.Placements["title"])
	}
}

func keysOf(r *InlineRelation) []string {
	var out []string
	for _, c := range r.Columns {
		out = append(out, c.Key)
	}
	return out
}

func TestInlineTranslationShape(t *testing.T) {
	d, err := dtd.Parse(`
<!ELEMENT root (entry*)>
<!ELEMENT entry (title, tag*)>
<!ATTLIST entry id ID #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
`, "root")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildInlineMapping(dtd.BuildGraph(d))
	if err != nil {
		t.Fatal(err)
	}
	// Inlined column access: no join beyond the entry relation.
	sql, err := Inline(xpath.MustParse("/root/entry[title='x']/@id"), m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(sql, "inl_entry") != 1 {
		t.Errorf("expected one entry reference:\n%s", sql)
	}
	if !strings.Contains(sql, `"title" = 'x'`) {
		t.Errorf("title predicate missing:\n%s", sql)
	}
	// Set-valued child crosses into its own relation with parentcode.
	sql, err = Inline(xpath.MustParse("/root/entry/tag"), m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "inl_tag") || !strings.Contains(sql, "parentid") {
		t.Errorf("tag relation join missing:\n%s", sql)
	}
	// Descendants through recursion are rejected below the root.
	dRec, err := dtd.Parse(`
<!ELEMENT assembly (part)>
<!ELEMENT part (partname, part*)>
<!ELEMENT partname (#PCDATA)>
`, "assembly")
	if err != nil {
		t.Fatal(err)
	}
	mRec, err := BuildInlineMapping(dtd.BuildGraph(dRec))
	if err != nil {
		t.Fatal(err)
	}
	// Document-rooted // is exact even with recursion.
	if _, err := Inline(xpath.MustParse("//partname"), mRec); err != nil {
		t.Errorf("root-anchored //partname should work: %v", err)
	}
	if _, err := Inline(xpath.MustParse("/assembly/part//partname"), mRec); err == nil {
		t.Error("anchored descendant through recursion should be unsupported")
	}
}
