package translate

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// DeweyOptions parameterizes the Dewey-order translation.
type DeweyOptions struct {
	// Table is the dewey table name (default "dewey"):
	// dewey(pre, path, parent, level, ordinal, kind, name, value).
	// path is the dotted, zero-padded Dewey label; parent is the
	// parent's path; lexicographic path order is document order.
	Table string
}

func (o *DeweyOptions) defaults() {
	if o.Table == "" {
		o.Table = "dewey"
	}
}

// Dewey translates XPath to SQL over Dewey-order labels (Tatarinov et
// al.): ancestry is a path-prefix test, rendered as a half-open string
// range (path > p || '.' AND path < p || '/') so the B-tree on path
// serves both child and descendant steps; child adds a level equality.
func Dewey(p *xpath.Path, opt DeweyOptions) (string, error) {
	opt.defaults()
	if !p.Absolute {
		return "", unsupported("dewey", "relative paths")
	}
	if len(p.Steps) == 0 {
		return "", unsupported("dewey", "the bare document path /")
	}
	tbl := opt.Table
	var from []string
	var where []string
	cur := "" // empty = document node
	n := 0
	newAlias := func() string {
		n++
		a := fmt.Sprintf("d%d", n)
		from = append(from, tbl+" "+a)
		return a
	}

	prefixRange := func(a, parent string) {
		// Descendants of `parent` are exactly the paths in the open
		// range (parent + '.', parent + '/'): '/' is the successor of
		// '.' in ASCII.
		where = append(where,
			fmt.Sprintf("%s.path > %s.path || '.'", a, parent),
			fmt.Sprintf("%s.path < %s.path || '/'", a, parent),
		)
	}

	for _, s := range p.Steps {
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisAttribute:
			a := newAlias()
			if cur == "" {
				where = append(where, fmt.Sprintf("%s.level = 1", a))
			} else {
				// Child: parent-path equality beats the range+level
				// form because the (parent, …) index is an exact probe.
				where = append(where, fmt.Sprintf("%s.parent = %s.path", a, cur))
			}
			if c := deweyTestCond(a, s.Test, s.Axis == xpath.AxisAttribute); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisDescendant:
			a := newAlias()
			if cur != "" {
				prefixRange(a, cur)
			}
			if c := deweyTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisParent:
			if cur == "" {
				return "", unsupported("dewey", "parent of the document node")
			}
			a := newAlias()
			where = append(where, fmt.Sprintf("%s.path = %s.parent", a, cur))
			if c := deweyTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisAncestor:
			if cur == "" {
				return "", unsupported("dewey", "ancestor of the document node")
			}
			// Ancestors are exactly the proper path prefixes (at
			// component boundaries): the reverse of the descendant
			// range.
			a := newAlias()
			where = append(where,
				fmt.Sprintf("%s.path > %s.path || '.'", cur, a),
				fmt.Sprintf("%s.path < %s.path || '/'", cur, a),
			)
			if c := deweyTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisFollowingSibling, xpath.AxisPrecedingSibling:
			if cur == "" {
				return "", unsupported("dewey", "siblings of the document node")
			}
			a := newAlias()
			where = append(where, fmt.Sprintf("%s.parent = %s.parent", a, cur))
			if s.Axis == xpath.AxisFollowingSibling {
				where = append(where, fmt.Sprintf("%s.path > %s.path", a, cur))
			} else {
				where = append(where, fmt.Sprintf("%s.path < %s.path", a, cur))
			}
			where = append(where, fmt.Sprintf("%s.kind <> 'attr'", a))
			if c := deweyTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisSelf:
			if cur == "" {
				return "", unsupported("dewey", "self step on the document node")
			}
			if c := deweyTestCond(cur, s.Test, false); c != "" {
				where = append(where, c)
			}
		default:
			return "", unsupported("dewey", "axis "+s.Axis.String())
		}
		for _, pe := range s.Preds {
			c, err := deweyPred(pe, cur, opt)
			if err != nil {
				return "", err
			}
			where = append(where, c)
		}
	}

	sql := "SELECT DISTINCT " + cur + ".pre AS id, " + cur + ".value AS val, " + cur + ".path AS dpath FROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	// Document order is path order (pre numbers go stale after ordered
	// inserts; paths never do).
	return "SELECT id, val FROM (" + sql + ") r ORDER BY dpath", nil
}

func deweyTestCond(a string, t xpath.NodeTest, isAttr bool) string {
	switch t.Kind {
	case xpath.TestName:
		kind := "elem"
		if isAttr {
			kind = "attr"
		}
		return fmt.Sprintf("%s.name = %s AND %s.kind = '%s'", a, QuoteString(t.Name), a, kind)
	case xpath.TestWildcard:
		kind := "elem"
		if isAttr {
			kind = "attr"
		}
		return fmt.Sprintf("%s.kind = '%s'", a, kind)
	case xpath.TestText:
		return fmt.Sprintf("%s.kind = 'text'", a)
	case xpath.TestComment:
		return fmt.Sprintf("%s.kind = 'comment'", a)
	case xpath.TestNode:
		return fmt.Sprintf("%s.kind <> 'attr'", a)
	}
	return ""
}

func deweyPred(e xpath.Expr, cur string, opt DeweyOptions) (string, error) {
	switch e := e.(type) {
	case *xpath.BinaryExpr:
		switch e.Op {
		case "and", "or":
			l, err := deweyPred(e.L, cur, opt)
			if err != nil {
				return "", err
			}
			r, err := deweyPred(e.R, cur, opt)
			if err != nil {
				return "", err
			}
			return "(" + l + " " + strings.ToUpper(e.Op) + " " + r + ")", nil
		default:
			return deweyComparison(e, cur, opt)
		}
	case *xpath.NumberLit:
		return deweyPosition(cur, "=", numLiteral(e.Val), opt), nil
	case *xpath.PathOperand:
		chain, _, err := deweyPredChain(e.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + ")", nil
	case *xpath.FuncCall:
		switch e.Name {
		case "not":
			if len(e.Args) != 1 {
				return "", unsupported("dewey", "not() arity")
			}
			inner, err := deweyPred(e.Args[0], cur, opt)
			if err != nil {
				return "", err
			}
			return "NOT (" + inner + ")", nil
		case "true":
			return "1 = 1", nil
		case "false":
			return "1 = 0", nil
		case "contains", "starts-with":
			if len(e.Args) != 2 {
				return "", unsupported("dewey", e.Name+"() arity")
			}
			lit, ok := e.Args[1].(*xpath.StringLit)
			if !ok {
				return "", unsupported("dewey", e.Name+"() with a non-literal pattern")
			}
			pattern := "%" + likeEscapeMeta(lit.Val) + "%"
			if e.Name == "starts-with" {
				pattern = likeEscapeMeta(lit.Val) + "%"
			}
			cond := func(operand string) string {
				return fmt.Sprintf("%s LIKE %s ESCAPE '\\'", operand, QuoteString(pattern))
			}
			if po, ok := e.Args[0].(*xpath.PathOperand); ok {
				if len(po.Path.Steps) == 1 && po.Path.Steps[0].Axis == xpath.AxisSelf {
					return cond(cur + ".value"), nil
				}
				chain, valCol, err := deweyPredChain(po.Path, cur, opt)
				if err != nil {
					return "", err
				}
				return "EXISTS (" + chain + " AND " + cond(valCol) + ")", nil
			}
			return "", unsupported("dewey", "non-path operand in string function")
		}
		return "", unsupported("dewey", e.Name+"() in a predicate")
	}
	return "", unsupported("dewey", fmt.Sprintf("predicate %T", e))
}

func deweyComparison(e *xpath.BinaryExpr, cur string, opt DeweyOptions) (string, error) {
	l, r, op := e.L, e.R, e.Op
	if isLiteral(l) && !isLiteral(r) {
		l, r = r, l
		op = flipXPathOp(op)
	}
	lit, err := literalSQL(r)
	if err != nil {
		return "", err
	}
	if op == "!=" {
		op = "<>"
	}
	switch lx := l.(type) {
	case *xpath.FuncCall:
		switch lx.Name {
		case "position":
			return deweyPosition(cur, op, lit, opt), nil
		case "count":
			if len(lx.Args) != 1 {
				return "", unsupported("dewey", "count() arity")
			}
			po, ok := lx.Args[0].(*xpath.PathOperand)
			if !ok {
				return "", unsupported("dewey", "count() of a non-path")
			}
			chain, _, err := deweyPredChain(po.Path, cur, opt)
			if err != nil {
				return "", err
			}
			countQ := strings.Replace(chain, "SELECT 1 ", "SELECT COUNT(*) ", 1)
			return "(" + countQ + ") " + op + " " + lit, nil
		case "string-length":
			if len(lx.Args) == 0 {
				return "LENGTH(" + cur + ".value) " + op + " " + lit, nil
			}
		}
		return "", unsupported("dewey", lx.Name+"() comparison")
	case *xpath.PathOperand:
		if len(lx.Path.Steps) == 1 && lx.Path.Steps[0].Axis == xpath.AxisSelf {
			return cur + ".value " + op + " " + lit, nil
		}
		chain, valCol, err := deweyPredChain(lx.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + " AND " + valCol + " " + op + " " + lit + ")", nil
	}
	return "", unsupported("dewey", fmt.Sprintf("comparison of %T", l))
}

func deweyPosition(cur, op, lit string, opt DeweyOptions) string {
	return fmt.Sprintf(
		"(SELECT COUNT(*) FROM %s s WHERE s.parent = %s.parent AND s.kind = %s.kind AND s.name = %s.name AND s.path < %s.path) + 1 %s %s",
		opt.Table, cur, cur, cur, cur, op, lit)
}

func deweyPredChain(p *xpath.Path, cur string, opt DeweyOptions) (string, string, error) {
	if p.Absolute {
		return "", "", unsupported("dewey", "absolute paths inside predicates")
	}
	var from []string
	var where []string
	prev := cur
	for i, s := range p.Steps {
		if len(s.Preds) > 0 {
			return "", "", unsupported("dewey", "nested predicates")
		}
		a := fmt.Sprintf("%sq%d", cur, i+1)
		from = append(from, opt.Table+" "+a)
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisAttribute:
			where = append(where, fmt.Sprintf("%s.parent = %s.path", a, prev))
			if c := deweyTestCond(a, s.Test, s.Axis == xpath.AxisAttribute); c != "" {
				where = append(where, c)
			}
		case xpath.AxisDescendant:
			where = append(where,
				fmt.Sprintf("%s.path > %s.path || '.'", a, prev),
				fmt.Sprintf("%s.path < %s.path || '/'", a, prev),
			)
			if c := deweyTestCond(a, s.Test, false); c != "" {
				where = append(where, c)
			}
		case xpath.AxisParent:
			where = append(where, fmt.Sprintf("%s.path = %s.parent", a, prev))
		default:
			return "", "", unsupported("dewey", "axis "+s.Axis.String()+" inside predicates")
		}
		prev = a
	}
	if prev == cur {
		return "", "", unsupported("dewey", "empty predicate path")
	}
	q := "SELECT 1 FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(where, " AND ")
	return q, prev + ".value", nil
}
