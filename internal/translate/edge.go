package translate

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// EdgeOptions parameterizes the Edge-table translation.
type EdgeOptions struct {
	// Table is the edge table name (default "edge").
	Table string
	// MaxDepth bounds the expansion of descendant steps: the Edge
	// scheme has no structural index, so `//x` becomes a UNION over
	// explicit join chains of every possible length — the cost the
	// interval encoding exists to remove (experiment F2).
	MaxDepth int
	// MaxExpansions caps the UNION size (safety valve).
	MaxExpansions int
	// Catalog, when set, switches descendant expansion from blind
	// wildcard chains to the concrete label paths observed in the data
	// (the path-index variant; ablation A1). Wildcard hops disappear
	// and the UNION covers only label chains that actually exist.
	Catalog *PathCatalog
}

func (o *EdgeOptions) defaults() {
	if o.Table == "" {
		o.Table = "edge"
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 16
	}
	if o.MaxExpansions <= 0 {
		o.MaxExpansions = 256
	}
}

// edgeHop is one join hop of an expanded path.
type edgeHop struct {
	axis xpath.Axis
	test xpath.NodeTest
	// preds are attached to the final hop of each original step.
	preds []xpath.Expr
}

// Edge translates an XPath query to SQL over the Edge table
// edge(source, ordinal, name, kind, target, value).
func Edge(p *xpath.Path, opt EdgeOptions) (string, error) {
	opt.defaults()
	if !p.Absolute {
		return "", unsupported("edge", "relative paths")
	}
	if len(p.Steps) == 0 {
		return "", unsupported("edge", "the bare document path /")
	}
	var expansions [][]edgeHop
	var err error
	if opt.Catalog != nil {
		expansions, err = expandEdgeViaCatalog(p.Steps, opt)
	} else {
		expansions, err = expandEdgeSteps(p.Steps, opt)
	}
	if err != nil {
		return "", err
	}
	var parts []string
	for _, hops := range expansions {
		q, err := edgeChainSQL(hops, opt)
		if err != nil {
			return "", err
		}
		parts = append(parts, q)
	}
	if len(parts) == 1 {
		return parts[0] + " ORDER BY id", nil
	}
	return "SELECT DISTINCT id, val FROM (" + strings.Join(parts, " UNION ALL ") + ") u ORDER BY id", nil
}

// expandEdgeSteps replaces descendant steps with every possible chain of
// wildcard child hops, bounded by MaxDepth.
func expandEdgeSteps(steps []xpath.Step, opt EdgeOptions) ([][]edgeHop, error) {
	// Fixed hops consumed by non-descendant steps.
	fixed := 0
	nDesc := 0
	for _, s := range steps {
		switch s.Axis {
		case xpath.AxisDescendant:
			nDesc++
		case xpath.AxisChild, xpath.AxisAttribute, xpath.AxisParent:
			fixed++
		case xpath.AxisSelf:
			// no hop
		default:
			return nil, unsupported("edge", "axis "+s.Axis.String())
		}
	}
	budget := opt.MaxDepth - fixed
	if budget < nDesc {
		budget = nDesc
	}

	out := [][]edgeHop{nil}
	for _, s := range steps {
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisAttribute, xpath.AxisParent, xpath.AxisSelf:
			for i := range out {
				out[i] = append(out[i], edgeHop{axis: s.Axis, test: s.Test, preds: s.Preds})
			}
		case xpath.AxisDescendant:
			var next [][]edgeHop
			for _, base := range out {
				for d := 1; d <= budget; d++ {
					hops := append([]edgeHop{}, base...)
					for k := 1; k < d; k++ {
						hops = append(hops, edgeHop{axis: xpath.AxisChild, test: xpath.NodeTest{Kind: xpath.TestNode}})
					}
					hops = append(hops, edgeHop{axis: xpath.AxisChild, test: s.Test, preds: s.Preds})
					next = append(next, hops)
					if len(next) > opt.MaxExpansions {
						return nil, fmt.Errorf("translate: edge descendant expansion exceeds %d chains (depth %d); raise MaxExpansions", opt.MaxExpansions, opt.MaxDepth)
					}
				}
			}
			out = next
		}
	}
	return out, nil
}

// expandEdgeViaCatalog expands descendant/wildcard steps into the
// concrete label chains recorded in the path catalog (ablation A1):
// the path index removes blind wildcard hops at the price of a catalog
// lookup and a data-dependent (but exact) union.
func expandEdgeViaCatalog(steps []xpath.Step, opt EdgeOptions) ([][]edgeHop, error) {
	// Paths containing axes the catalog cannot express fall back to
	// blind expansion.
	for _, s := range steps {
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisDescendant, xpath.AxisAttribute:
		default:
			return expandEdgeSteps(steps, opt)
		}
	}
	pat, err := patternOf(steps, "edge")
	if err != nil {
		return expandEdgeSteps(steps, opt)
	}
	matches := opt.Catalog.Expand(pat)
	if len(matches) > opt.MaxExpansions {
		return nil, fmt.Errorf("translate: edge catalog expansion exceeds %d chains", opt.MaxExpansions)
	}
	var out [][]edgeHop
	for _, m := range matches {
		// Map step index -> segment for predicate attachment.
		segPreds := make(map[int][]xpath.Expr)
		for si, s := range steps {
			segPreds[m.StepSeg[si]] = append(segPreds[m.StepSeg[si]], s.Preds...)
		}
		var hops []edgeHop
		for k, seg := range m.Segments {
			h := edgeHop{axis: xpath.AxisChild, preds: segPreds[k]}
			switch {
			case seg == "#text":
				h.test = xpath.NodeTest{Kind: xpath.TestText}
			case strings.HasPrefix(seg, "@"):
				h.axis = xpath.AxisAttribute
				h.test = xpath.NodeTest{Kind: xpath.TestName, Name: seg[1:]}
			default:
				h.test = xpath.NodeTest{Kind: xpath.TestName, Name: seg}
			}
			hops = append(hops, h)
		}
		out = append(out, hops)
	}
	if len(out) == 0 {
		// No concrete path: one impossible chain keeps the SQL valid.
		out = append(out, []edgeHop{{
			axis: xpath.AxisChild,
			test: xpath.NodeTest{Kind: xpath.TestName, Name: "\x00nomatch"},
		}})
	}
	return out, nil
}

// edgeChainSQL renders one expansion as a single-block SELECT.
func edgeChainSQL(hops []edgeHop, opt EdgeOptions) (string, error) {
	tbl := opt.Table
	var from []string
	var where []string
	alias := func(i int) string { return fmt.Sprintf("e%d", i+1) }

	cur := "" // empty means the document node (id 0)
	n := 0
	for _, h := range hops {
		switch h.axis {
		case xpath.AxisParent:
			if cur == "" {
				return "", unsupported("edge", "parent of the document node")
			}
			a := alias(n)
			n++
			from = append(from, tbl+" "+a)
			where = append(where, fmt.Sprintf("%s.target = %s.source", a, cur))
			if c := edgeTestCond(a, h.test, false); c != "" {
				where = append(where, c)
			}
			cur = a
		case xpath.AxisSelf:
			if c := edgeTestCond(cur, h.test, false); c != "" {
				where = append(where, c)
			}
		default: // child, attribute
			a := alias(n)
			n++
			from = append(from, tbl+" "+a)
			src := "0"
			if cur != "" {
				src = cur + ".target"
			}
			where = append(where, fmt.Sprintf("%s.source = %s", a, src))
			if c := edgeTestCond(a, h.test, h.axis == xpath.AxisAttribute); c != "" {
				where = append(where, c)
			}
			cur = a
		}
		for _, pe := range h.preds {
			c, err := edgePred(pe, cur, opt)
			if err != nil {
				return "", err
			}
			where = append(where, c)
		}
	}
	if cur == "" {
		return "", unsupported("edge", "empty path")
	}
	sql := "SELECT " + cur + ".target AS id, " + cur + ".value AS val FROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		sql += " WHERE " + strings.Join(where, " AND ")
	}
	return sql, nil
}

// edgeTestCond renders the node test for an edge alias.
func edgeTestCond(a string, t xpath.NodeTest, isAttr bool) string {
	if a == "" {
		return ""
	}
	switch t.Kind {
	case xpath.TestName:
		kind := "elem"
		if isAttr {
			kind = "attr"
		}
		return fmt.Sprintf("%s.kind = '%s' AND %s.name = %s", a, kind, a, QuoteString(t.Name))
	case xpath.TestWildcard:
		kind := "elem"
		if isAttr {
			kind = "attr"
		}
		return fmt.Sprintf("%s.kind = '%s'", a, kind)
	case xpath.TestText:
		return fmt.Sprintf("%s.kind = 'text'", a)
	case xpath.TestComment:
		return fmt.Sprintf("%s.kind = 'comment'", a)
	case xpath.TestNode:
		// Any child edge; structural hops restrict to elements so the
		// expansion of // only walks the element spine.
		return fmt.Sprintf("%s.kind = 'elem'", a)
	}
	return ""
}

// edgePred translates one predicate for the context edge alias `cur`.
// The context node id is cur.target.
func edgePred(e xpath.Expr, cur string, opt EdgeOptions) (string, error) {
	switch e := e.(type) {
	case *xpath.BinaryExpr:
		switch e.Op {
		case "and", "or":
			l, err := edgePred(e.L, cur, opt)
			if err != nil {
				return "", err
			}
			r, err := edgePred(e.R, cur, opt)
			if err != nil {
				return "", err
			}
			op := strings.ToUpper(e.Op)
			return "(" + l + " " + op + " " + r + ")", nil
		default:
			return edgeComparison(e, cur, opt)
		}
	case *xpath.NumberLit:
		// [N] == [position() = N]
		return edgePosition(cur, "=", numLiteral(e.Val), opt), nil
	case *xpath.PathOperand:
		chain, _, err := edgePredChain(e.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + ")", nil
	case *xpath.FuncCall:
		return edgePredFunc(e, cur, opt)
	}
	return "", unsupported("edge", fmt.Sprintf("predicate %T", e))
}

func edgePredFunc(e *xpath.FuncCall, cur string, opt EdgeOptions) (string, error) {
	switch e.Name {
	case "not":
		if len(e.Args) != 1 {
			return "", unsupported("edge", "not() arity")
		}
		inner, err := edgePred(e.Args[0], cur, opt)
		if err != nil {
			return "", err
		}
		return "NOT (" + inner + ")", nil
	case "true":
		return "1 = 1", nil
	case "false":
		return "1 = 0", nil
	case "contains", "starts-with":
		if len(e.Args) != 2 {
			return "", unsupported("edge", e.Name+"() arity")
		}
		lit, ok := e.Args[1].(*xpath.StringLit)
		if !ok {
			return "", unsupported("edge", e.Name+"() with a non-literal pattern")
		}
		pattern := "%" + likeEscapeMeta(lit.Val) + "%"
		if e.Name == "starts-with" {
			pattern = likeEscapeMeta(lit.Val) + "%"
		}
		return edgeValueMatch(e.Args[0], cur, opt, func(operand string) string {
			return fmt.Sprintf("%s LIKE %s ESCAPE '\\'", operand, QuoteString(pattern))
		})
	}
	return "", unsupported("edge", e.Name+"() in a predicate")
}

// edgeValueMatch applies cond() to the string value of the first
// argument (a relative path or "."). Dot is the context node's value.
func edgeValueMatch(arg xpath.Expr, cur string, opt EdgeOptions, cond func(string) string) (string, error) {
	if po, ok := arg.(*xpath.PathOperand); ok {
		if len(po.Path.Steps) == 1 && po.Path.Steps[0].Axis == xpath.AxisSelf {
			return cond(cur + ".value"), nil
		}
		chain, valCol, err := edgePredChain(po.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + " AND " + cond(valCol) + ")", nil
	}
	return "", unsupported("edge", "non-path operand in string function")
}

// edgeComparison translates [path op literal] and positional forms.
func edgeComparison(e *xpath.BinaryExpr, cur string, opt EdgeOptions) (string, error) {
	l, r, op := e.L, e.R, e.Op
	// Normalize literal-first comparisons.
	if isLiteral(l) && !isLiteral(r) {
		l, r = r, l
		op = flipXPathOp(op)
	}
	lit, err := literalSQL(r)
	if err != nil {
		return "", err
	}
	sqlOp := op
	if sqlOp == "!=" {
		sqlOp = "<>"
	}
	switch lx := l.(type) {
	case *xpath.FuncCall:
		switch lx.Name {
		case "position":
			return edgePosition(cur, sqlOp, lit, opt), nil
		case "count":
			if len(lx.Args) != 1 {
				return "", unsupported("edge", "count() arity")
			}
			po, ok := lx.Args[0].(*xpath.PathOperand)
			if !ok {
				return "", unsupported("edge", "count() of a non-path")
			}
			chain, _, err := edgePredChain(po.Path, cur, opt)
			if err != nil {
				return "", err
			}
			countQ := strings.Replace(chain, "SELECT 1 ", "SELECT COUNT(*) ", 1)
			return "(" + countQ + ") " + sqlOp + " " + lit, nil
		case "string-length":
			if len(lx.Args) == 0 {
				return "LENGTH(" + cur + ".value) " + sqlOp + " " + lit, nil
			}
			return edgeValueMatch(lx.Args[0], cur, opt, func(operand string) string {
				return "LENGTH(" + operand + ") " + sqlOp + " " + lit
			})
		}
		return "", unsupported("edge", lx.Name+"() comparison")
	case *xpath.PathOperand:
		if len(lx.Path.Steps) == 1 && lx.Path.Steps[0].Axis == xpath.AxisSelf {
			return cur + ".value " + sqlOp + " " + lit, nil
		}
		chain, valCol, err := edgePredChain(lx.Path, cur, opt)
		if err != nil {
			return "", err
		}
		return "EXISTS (" + chain + " AND " + valCol + " " + sqlOp + " " + lit + ")", nil
	}
	return "", unsupported("edge", fmt.Sprintf("comparison of %T", l))
}

// edgePosition renders the positional predicate: the rank of the
// context node among its same-name, same-kind siblings.
func edgePosition(cur, op, lit string, opt EdgeOptions) string {
	return fmt.Sprintf(
		"(SELECT COUNT(*) FROM %s s WHERE s.source = %s.source AND s.kind = %s.kind AND s.name = %s.name AND s.ordinal < %s.ordinal) + 1 %s %s",
		opt.Table, cur, cur, cur, cur, op, lit)
}

// edgePredChain builds the EXISTS body for a relative predicate path.
// It returns the subquery (without closing paren) and the value column
// of its final hop.
func edgePredChain(p *xpath.Path, cur string, opt EdgeOptions) (string, string, error) {
	if p.Absolute {
		return "", "", unsupported("edge", "absolute paths inside predicates")
	}
	var from []string
	var where []string
	prev := ""
	for i, s := range p.Steps {
		if len(s.Preds) > 0 {
			return "", "", unsupported("edge", "nested predicates")
		}
		a := fmt.Sprintf("%sp%d", cur, i+1)
		switch s.Axis {
		case xpath.AxisChild, xpath.AxisAttribute:
			from = append(from, opt.Table+" "+a)
			src := cur + ".target"
			if prev != "" {
				src = prev + ".target"
			}
			where = append(where, fmt.Sprintf("%s.source = %s", a, src))
			if c := edgeTestCond(a, s.Test, s.Axis == xpath.AxisAttribute); c != "" {
				where = append(where, c)
			}
			prev = a
		case xpath.AxisParent:
			from = append(from, opt.Table+" "+a)
			tgt := cur + ".source"
			if prev != "" {
				tgt = prev + ".source"
			}
			where = append(where, fmt.Sprintf("%s.target = %s", a, tgt))
			prev = a
		default:
			return "", "", unsupported("edge", "axis "+s.Axis.String()+" inside predicates")
		}
	}
	if prev == "" {
		return "", "", unsupported("edge", "empty predicate path")
	}
	q := "SELECT 1 FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(where, " AND ")
	return q, prev + ".value", nil
}

// Shared predicate-literal helpers.

func isLiteral(e xpath.Expr) bool {
	switch e.(type) {
	case *xpath.StringLit, *xpath.NumberLit:
		return true
	}
	return false
}

func literalSQL(e xpath.Expr) (string, error) {
	switch e := e.(type) {
	case *xpath.StringLit:
		return QuoteString(e.Val), nil
	case *xpath.NumberLit:
		return numLiteral(e.Val), nil
	}
	return "", fmt.Errorf("translate: comparison requires a literal operand, got %T", e)
}

func flipXPathOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}
