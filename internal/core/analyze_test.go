package core

import (
	"strings"
	"testing"

	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// f1Queries is the canonical six-class query mix of the evaluation
// (short path, descendant, value select, twig, positional, attribute
// value) — the same classes the bench harness sweeps.
var f1Queries = []string{
	"/site/categories/category/name",
	"//item/name",
	"/site/people/person[address/city='Berlin']/name",
	"//open_auction[initial > 200]/bidder/increase",
	"/site/open_auctions/open_auction/bidder[1]/increase",
	"//person[profile/@income > 60000]",
}

// TestExplainAnalyzeMatchesCardinality runs the F1 mix on every scheme
// and checks that the EXPLAIN ANALYZE execution reports exactly the
// cardinality the real query returns — and, where the scheme's ids are
// node ids, that this equals the native DOM answer.
func TestExplainAnalyzeMatchesCardinality(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 7})
	for _, kind := range []SchemeKind{Edge, Binary, Universal, Interval, Dewey, Inline} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			opts := Options{}
			if kind == Inline {
				opts.DTD = xmlgen.AuctionDTD
				opts.Root = "site"
			}
			st, err := OpenWith(kind, opts)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if err := st.LoadDocument(doc); err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, q := range f1Queries {
				sql, err := st.Translate(q)
				if err != nil {
					// Documented mapping limitation (e.g. universal and
					// positional predicates) — not this test's subject.
					continue
				}
				rows, err := st.DB().Query(sql)
				if err != nil {
					t.Errorf("%s: query: %v", q, err)
					continue
				}
				ap, err := st.DB().ExplainAnalyzePlan(sql)
				if err != nil {
					t.Errorf("%s: analyze: %v", q, err)
					continue
				}
				if ap.Rows != rows.Len() {
					t.Errorf("%s: analyzed rows %d != executed cardinality %d", q, ap.Rows, rows.Len())
				}
				if len(ap.Ops) == 0 || ap.Ops[0].Rows != int64(rows.Len()) {
					t.Errorf("%s: root operator actuals do not match cardinality (%+v)", q, ap.Ops)
				}
				if !strings.Contains(ap.Text, "actual rows=") {
					t.Errorf("%s: plan text missing annotations:\n%s", q, ap.Text)
				}
				if kind != Inline {
					// Non-inline ids are node ids: the cardinality must
					// also agree with the native DOM evaluation.
					if want := len(xpath.Eval(doc, xpath.MustParse(q))); rows.Len() != want {
						t.Errorf("%s: relational cardinality %d != dom %d", q, rows.Len(), want)
					}
				}
			}
		})
	}
}

// TestStoreExplainAnalyze drives the Store-level entry point (translate
// + analyze) and checks it feeds the exec phase span.
func TestStoreExplainAnalyze(t *testing.T) {
	st, err := Open(Interval)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	before := st.PhaseStats().Exec.Count
	text, err := st.ExplainAnalyze(`/bib/book[price < 50]/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "actual rows=") || !strings.Contains(text, "Execution: 1 row(s)") {
		t.Errorf("analyzed text:\n%s", text)
	}
	if after := st.PhaseStats().Exec.Count; after != before+1 {
		t.Errorf("exec spans %d -> %d, want +1", before, after)
	}
}

// TestPhaseStatsAccumulate checks that the shred/translate/exec/publish
// spans tick as the corresponding operations run.
func TestPhaseStatsAccumulate(t *testing.T) {
	st, err := Open(Dewey)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(`/bib/book/title`); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := st.WriteXML(&b); err != nil {
		t.Fatal(err)
	}
	ph := st.PhaseStats()
	if ph.Shred.Count == 0 || ph.Shred.Total <= 0 {
		t.Errorf("shred phase not recorded: %+v", ph.Shred)
	}
	if ph.Translate.Count == 0 {
		t.Errorf("translate phase not recorded: %+v", ph.Translate)
	}
	if ph.Exec.Count == 0 {
		t.Errorf("exec phase not recorded: %+v", ph.Exec)
	}
	if ph.Publish.Count == 0 {
		t.Errorf("publish phase not recorded: %+v", ph.Publish)
	}
}
