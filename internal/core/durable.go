package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/lru"
	"repro/internal/shred"
	"repro/internal/sqldb"
	"repro/internal/xmldom"
)

// DurableStore is a Store bound to a data directory with write-ahead
// logging and crash recovery: every load, subtree insertion and direct
// SQL write is durable once acknowledged, document-level operations
// are crash-atomic (group-committed as one WAL frame), and reopening
// the directory after a crash replays the log over the last checkpoint.
//
// Only the stateless schemes — Interval and Dewey — can be durable:
// they keep all their state in the database, so snapshot + log replay
// reconstructs them exactly. (Edge, Binary, Universal and Inline carry
// in-memory catalogs a log does not capture; reload those from XML.)
type DurableStore struct {
	*Store
	ddb *sqldb.DurableDB
}

// DurableOptions re-exports the engine's durability tuning knobs.
type DurableOptions = sqldb.DurableOptions

// schemeTables names one table each scheme always creates, used to
// detect that a recovered directory holds the scheme the caller asked
// for.
var schemeTables = map[SchemeKind]string{
	Interval: "accel",
	Dewey:    "dewey",
}

// OpenDurable opens or crash-recovers a durable store in dir.
func OpenDurable(kind SchemeKind, dir string, opts Options) (*DurableStore, error) {
	return OpenDurableWith(kind, dir, opts, DurableOptions{})
}

// OpenDurableWith is OpenDurable with explicit durability options.
func OpenDurableWith(kind SchemeKind, dir string, opts Options, dopts DurableOptions) (*DurableStore, error) {
	fs, err := sqldb.NewOSVFS(dir)
	if err != nil {
		return nil, fmt.Errorf("core: opening data directory %s: %w", dir, err)
	}
	return OpenDurableVFS(kind, fs, opts, dopts)
}

// OpenDurableVFS opens or crash-recovers a durable store on an
// explicit VFS — the seam the fault-injection harness drives.
func OpenDurableVFS(kind SchemeKind, fs sqldb.VFS, opts Options, dopts DurableOptions) (*DurableStore, error) {
	var s shred.Scheme
	switch kind {
	case Interval:
		s = shred.NewInterval(opts.WithValueIndex)
	case Dewey:
		s = shred.NewDewey(opts.WithValueIndex)
	default:
		return nil, fmt.Errorf("core: scheme %q cannot be durable (in-memory mapping state); use interval or dewey", kind)
	}
	ddb, err := sqldb.OpenDurable(fs, dopts)
	if err != nil {
		return nil, err
	}
	db := ddb.DB()
	if opts.Parallelism > 0 {
		db.SetParallelism(opts.Parallelism)
	}
	if opts.MemoryBudget > 0 {
		db.SetMemoryBudget(opts.MemoryBudget)
	}
	if opts.QueryMemoryLimit > 0 {
		db.SetQueryMemoryLimit(opts.QueryMemoryLimit)
	}
	if opts.MaxConcurrentQueries > 0 {
		db.SetAdmissionControl(opts.MaxConcurrentQueries, opts.MaxQueuedQueries)
	}
	// The explicit option wins over the XRDB_BUFFER_POOL env default and
	// over dopts.BufferPoolPages (already applied by sqldb.OpenDurable).
	if opts.BufferPoolPages > 0 {
		db.SetBufferPool(opts.BufferPoolPages)
	}
	fresh := len(db.TableNames()) == 0
	if fresh {
		// Setup's DDL goes through the commit logger, so even a fresh
		// directory is recoverable from its WAL alone.
		if err := s.Setup(db); err != nil {
			ddb.Close()
			return nil, err
		}
	} else if db.TableDef(schemeTables[kind]) == nil {
		ddb.Close()
		return nil, fmt.Errorf("core: data directory holds a different scheme (no %s table for %q)", schemeTables[kind], kind)
	}
	st := &Store{
		kind:   kind,
		scheme: s,
		db:     db,
		loaded: db.TotalRows() > 0,
		trans:  lru.New[string](defaultTransCacheCap),
	}
	return &DurableStore{Store: st, ddb: ddb}, nil
}

// Durable exposes the underlying durability engine (WAL size,
// checkpoint counters, degraded-mode state).
func (ds *DurableStore) Durable() *sqldb.DurableDB { return ds.ddb }

// Health reports the durability layer's state: "ok", or "degraded"
// with the storage fault that caused it. Reads keep working while
// degraded; Recover restores read-write service.
func (ds *DurableStore) Health() sqldb.Health { return ds.ddb.Health() }

// Recover attempts to leave degraded read-only mode by checkpointing
// the published (acknowledged) state and starting a fresh WAL.
func (ds *DurableStore) Recover() error { return ds.ddb.Recover() }

// LoadDocument shreds a document as one crash-atomic group commit:
// recovery sees the whole document or none of it.
func (ds *DurableStore) LoadDocument(doc *xmldom.Document) error {
	return ds.LoadDocumentContext(context.Background(), doc)
}

// LoadDocumentContext is LoadDocument honoring a context, checked at
// shred-batch granularity inside the group commit.
func (ds *DurableStore) LoadDocumentContext(ctx context.Context, doc *xmldom.Document) error {
	if err := ds.ddb.Group(func() error {
		return ds.Store.LoadDocumentContext(ctx, doc)
	}); err != nil {
		return err
	}
	_, err := ds.ddb.MaybeCheckpoint()
	return err
}

// LoadXML parses and shreds an XML document (crash-atomic).
func (ds *DurableStore) LoadXML(src []byte) error {
	return ds.LoadXMLContext(context.Background(), src)
}

// LoadXMLContext is LoadXML honoring a context: cancellation bounds
// the shred at its next bulk-insert batch.
func (ds *DurableStore) LoadXMLContext(ctx context.Context, src []byte) error {
	doc, err := xmldom.Parse(src)
	if err != nil {
		return err
	}
	return ds.LoadDocumentContext(ctx, doc)
}

// LoadXMLStream shreds a document from a stream with bounded memory.
// Unlike LoadXML, the load is NOT one crash-atomic group: each insert
// batch commits (and is WAL-acknowledged) on its own, so a crash
// mid-load can leave a partial document — rerun the load into a fresh
// directory in that case. The trade is deliberate: a group commit
// buffers every staged row until its one fsync, which would defeat
// the bounded-memory purpose of streaming.
func (ds *DurableStore) LoadXMLStream(ctx context.Context, r io.Reader) error {
	if err := ds.Store.LoadXMLStream(ctx, r); err != nil {
		return err
	}
	_, err := ds.ddb.MaybeCheckpoint()
	return err
}

// InsertXML inserts a fragment as one crash-atomic group commit.
func (ds *DurableStore) InsertXML(parentID int64, position int, fragment []byte) error {
	if err := ds.ddb.Group(func() error {
		return ds.Store.InsertXML(parentID, position, fragment)
	}); err != nil {
		return err
	}
	_, err := ds.ddb.MaybeCheckpoint()
	return err
}

// Exec runs a DML/DDL statement against the store's database with
// per-statement durability, then applies the auto-checkpoint policy.
func (ds *DurableStore) Exec(sql string, args ...sqldb.Value) (int, error) {
	n, err := ds.db.Exec(sql, args...)
	if err != nil {
		return n, err
	}
	_, cerr := ds.ddb.MaybeCheckpoint()
	return n, cerr
}

// Checkpoint forces a snapshot + WAL rotation now.
func (ds *DurableStore) Checkpoint() error { return ds.ddb.Checkpoint() }

// Close closes the WAL. The directory reopens (and replays) with
// OpenDurable.
func (ds *DurableStore) Close() error { return ds.ddb.Close() }
