package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/sqldb"
	"repro/internal/xmldom"
)

// StoreSnapshot is a pinned, consistent view of a Store: every query,
// count and reconstruction through it observes exactly the commits with
// seq <= Seq(), no matter how many subtree insertions publish
// concurrently. It is the multi-statement read surface the engine's
// snapshot isolation exposes at the XML level — e.g. reconstructing a
// document while a writer keeps inserting, with the guarantee that the
// produced XML equals the document as of one single commit boundary.
// Release it when done so the snapshot-age metrics stop tracking it.
type StoreSnapshot struct {
	st   *Store
	snap *sqldb.Snapshot
}

// Snapshot pins the store's latest published database version for
// consistent multi-statement reads.
func (st *Store) Snapshot() *StoreSnapshot {
	return &StoreSnapshot{st: st, snap: st.db.AcquireSnapshot()}
}

// Seq returns the commit sequence the snapshot observes.
func (s *StoreSnapshot) Seq() uint64 { return s.snap.Seq() }

// DB returns the raw relational snapshot backing this store snapshot,
// so direct SQL reads can observe the same commit boundary as the
// XPath surface (the server's session layer leans on this).
func (s *StoreSnapshot) DB() *sqldb.Snapshot { return s.snap }

// Release unpins the snapshot (reads through it keep working; only the
// metrics tracking ends). Safe to call more than once.
func (s *StoreSnapshot) Release() { s.snap.Release() }

// Query compiles an XPath query and executes it against the pinned
// version set.
func (s *StoreSnapshot) Query(query string) (*Result, error) {
	return s.QueryContext(context.Background(), query)
}

// QueryContext is Query honoring a context deadline/cancellation.
func (s *StoreSnapshot) QueryContext(ctx context.Context, query string) (*Result, error) {
	sql, err := s.st.Translate(query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, err := s.snap.QueryContext(ctx, sql)
	if err != nil {
		return nil, fmt.Errorf("core: executing translation of %q: %w", query, err)
	}
	s.st.execPhase.add(time.Since(start))
	return resultFrom(query, sql, rows), nil
}

// Count runs a query against the snapshot and returns the cardinality.
func (s *StoreSnapshot) Count(query string) (int, error) {
	res, err := s.Query(query)
	if err != nil {
		return 0, err
	}
	return len(res.Matches), nil
}

// Reconstruct rebuilds the document exactly as of the snapshot's commit
// sequence, while writers keep publishing newer versions.
func (s *StoreSnapshot) Reconstruct() (*xmldom.Document, error) {
	start := time.Now()
	doc, err := s.st.scheme.Reconstruct(s.snap)
	if err != nil {
		return nil, err
	}
	s.st.publishPhase.add(time.Since(start))
	return doc, nil
}

// WriteXML serializes the snapshot's document as XML text.
func (s *StoreSnapshot) WriteXML(w io.Writer) error {
	doc, err := s.Reconstruct()
	if err != nil {
		return err
	}
	return xmldom.Serialize(w, doc.Root)
}
