package core

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
)

// durableXML publishes the store as a canonical string for state
// comparison ("" when no document is loaded).
func durableXML(t *testing.T, st *Store) string {
	t.Helper()
	if !st.Loaded() {
		return ""
	}
	var b strings.Builder
	if err := st.WriteXML(&b); err != nil {
		t.Fatalf("publish: %v", err)
	}
	return b.String()
}

func TestDurableStoreLoadReopen(t *testing.T) {
	for _, kind := range []SchemeKind{Interval, Dewey} {
		t.Run(string(kind), func(t *testing.T) {
			fs := sqldb.NewMemVFS()
			ds, err := OpenDurableVFS(kind, fs, Options{}, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if ds.Loaded() {
				t.Fatal("fresh store claims to be loaded")
			}
			if err := ds.LoadXML([]byte(smallDoc)); err != nil {
				t.Fatalf("load: %v", err)
			}
			want := durableXML(t, ds.Store)
			ds.Close()

			// Reopen: WAL replay alone must rebuild the document.
			ds2, err := OpenDurableVFS(kind, fs, Options{}, DurableOptions{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if !ds2.Loaded() {
				t.Fatal("reopened store lost the document")
			}
			if got := durableXML(t, ds2.Store); got != want {
				t.Fatalf("document changed across reopen:\n%s\nvs\n%s", got, want)
			}
			n, err := ds2.Count(`/bib/book[price < 50]/title`)
			if err != nil {
				t.Fatalf("query after recovery: %v", err)
			}
			if n != 1 {
				t.Fatalf("count after recovery = %d", n)
			}

			// Checkpoint, mutate, reopen again: snapshot + fresh WAL.
			if err := ds2.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			res, err := ds2.Query(`/bib`)
			if err != nil || len(res.Matches) != 1 {
				t.Fatalf("root query: %v (%d matches)", err, len(res.Matches))
			}
			frag := `<book year="2010"><title>WAL</title><price>12.50</price></book>`
			if err := ds2.InsertXML(res.Matches[0].ID, 2, []byte(frag)); err != nil {
				t.Fatalf("insert: %v", err)
			}
			want2 := durableXML(t, ds2.Store)
			ds2.Close()

			ds3, err := OpenDurableVFS(kind, fs, Options{}, DurableOptions{})
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			if got := durableXML(t, ds3.Store); got != want2 {
				t.Fatalf("snapshot+WAL recovery diverged:\n%s\nvs\n%s", got, want2)
			}
			ds3.Close()
		})
	}
}

func TestDurableStoreSchemeChecks(t *testing.T) {
	if _, err := OpenDurableVFS(Edge, sqldb.NewMemVFS(), Options{}, DurableOptions{}); err == nil {
		t.Fatal("edge scheme accepted as durable (its catalog lives in memory)")
	}
	fs := sqldb.NewMemVFS()
	ds, err := OpenDurableVFS(Interval, fs, Options{}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
	if _, err := OpenDurableVFS(Dewey, fs, Options{}, DurableOptions{}); err == nil {
		t.Fatal("dewey store opened an interval data directory")
	}
}

// TestDurableStoreCrashSweep kills the store at every write-budget
// offset across load / insert / checkpoint and verifies recovery always
// lands on a whole-operation prefix: document loads and subtree inserts
// are group-committed, so a crash can never surface half a document.
func TestDurableStoreCrashSweep(t *testing.T) {
	for _, kind := range []SchemeKind{Interval, Dewey} {
		t.Run(string(kind), func(t *testing.T) { durableStoreCrashSweep(t, kind) })
	}
}

func durableStoreCrashSweep(t *testing.T, kind SchemeKind) {
	frag := `<book year="2010"><title>WAL</title><price>12.50</price></book>`

	// Baselines: plain in-memory stores after 0, 1, 2 whole ops, plus
	// the root ID the insert op targets (shredding is deterministic, so
	// it is the same in every run).
	base1, err := Open(kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := base1.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	res, err := base1.Query(`/bib`)
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("root query: %v", err)
	}
	rootID := res.Matches[0].ID
	base2, err := Open(kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := base2.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	if err := base2.InsertXML(rootID, 2, []byte(frag)); err != nil {
		t.Fatal(err)
	}
	prefixes := []string{"", durableXML(t, base1), durableXML(t, base2)}

	run := func(fs sqldb.VFS) int {
		acked := 0
		ds, err := OpenDurableVFS(kind, fs, Options{}, DurableOptions{})
		if err != nil {
			return 0
		}
		if err := ds.LoadXML([]byte(smallDoc)); err == nil {
			acked++
			if err := ds.InsertXML(rootID, 2, []byte(frag)); err == nil {
				acked++
			}
		}
		ds.Checkpoint()
		return acked // no Close: simulated kill
	}

	probe := sqldb.NewFaultVFS(sqldb.NewMemVFS(), -1)
	if acked := run(probe); acked != 2 {
		t.Fatalf("fault-free run acked %d/2 ops", acked)
	}
	total := probe.Written()

	step := int64(1)
	if testing.Short() {
		step = total/97 + 1
	}
	for budget := int64(0); budget <= total; budget += step {
		inner := sqldb.NewMemVFS()
		acked := run(sqldb.NewFaultVFS(inner, budget))
		for _, mode := range []sqldb.CrashMode{sqldb.CrashLoseUnsynced, sqldb.CrashKeepAll} {
			crashed := inner.Clone()
			crashed.Crash(mode)
			ds, err := OpenDurableVFS(kind, crashed, Options{}, DurableOptions{})
			if err != nil {
				// Acceptable only when the crash predates a working
				// store: a torn scheme setup cannot have acked ops.
				if acked > 0 {
					t.Fatalf("budget %d mode %d: %d acked ops but recovery failed: %v", budget, mode, acked, err)
				}
				continue
			}
			got := durableXML(t, ds.Store)
			k := -1
			for i, p := range prefixes {
				if got == p {
					k = i
					break
				}
			}
			if k < 0 {
				t.Fatalf("budget %d mode %d: recovered document is not a whole-op prefix:\n%s", budget, mode, got)
			}
			if mode == sqldb.CrashLoseUnsynced && k != acked {
				t.Fatalf("budget %d: lose-unsynced recovered prefix %d, acked %d", budget, k, acked)
			}
			if mode == sqldb.CrashKeepAll && (k < acked || k > acked+1) {
				t.Fatalf("budget %d: keep-all recovered prefix %d, acked %d", budget, k, acked)
			}
			// Recovered stores stay writable and queryable.
			if ds.Loaded() {
				if _, err := ds.Count(`/bib/book`); err != nil {
					t.Fatalf("budget %d mode %d: query after recovery: %v", budget, mode, err)
				}
			}
			ds.Close()
		}
	}
}

func TestDurableStoreExec(t *testing.T) {
	fs := sqldb.NewMemVFS()
	ds, err := OpenDurableVFS(Interval, fs, Options{}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Exec(`CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Exec(`INSERT INTO notes VALUES (1, 'recovered')`); err != nil {
		t.Fatal(err)
	}
	ds.Close()
	ds2, err := OpenDurableVFS(Interval, fs, Options{}, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ds2.DB().QueryScalar(`SELECT body FROM notes WHERE id = 1`)
	if err != nil || v.S != "recovered" {
		t.Fatalf("direct SQL write lost: %v %q", err, v.S)
	}
	ds2.Close()
}

// TestDurableStoreConcurrentExecDuringLoad is the end-to-end face of
// the group-commit durability fix: direct SQL writes acknowledged while
// a document load's durability group is open must survive a crash that
// hits before the load finishes — and the half-loaded document must
// not. (Before the WAL pipeline, those writes sat in the group buffer:
// acked, published, and gone on crash.)
func TestDurableStoreConcurrentExecDuringLoad(t *testing.T) {
	for _, mode := range []sqldb.CrashMode{sqldb.CrashLoseUnsynced, sqldb.CrashKeepAll} {
		fs := sqldb.NewMemVFS()
		ds, err := OpenDurableVFS(Interval, fs, Options{}, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		db := ds.Durable().DB()
		db.MustExec(`CREATE TABLE audit (k INTEGER PRIMARY KEY, note TEXT)`)

		var midLoad *sqldb.MemVFS
		gErr := ds.Durable().Group(func() error {
			if err := ds.Store.LoadXML([]byte(smallDoc)); err != nil {
				return err
			}
			// An auditor on another goroutine records rows while the load
			// is mid-group; each Exec return is a durability ack.
			done := make(chan error, 1)
			go func() {
				for i := 0; i < 3; i++ {
					if _, err := db.Exec(`INSERT INTO audit VALUES (?, 'acked')`, sqldb.NewInt(int64(i))); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			if err := <-done; err != nil {
				return err
			}
			midLoad = fs.Clone()
			midLoad.Crash(mode)
			return nil
		})
		if gErr != nil {
			t.Fatalf("mode %v: group load: %v", mode, gErr)
		}

		rds, err := OpenDurableVFS(Interval, midLoad, Options{}, DurableOptions{})
		if err != nil {
			t.Fatalf("mode %v: mid-load recovery: %v", mode, err)
		}
		if v, err := rds.DB().QueryScalar(`SELECT COUNT(*) FROM audit`); err != nil || v.Int() != 3 {
			t.Fatalf("mode %v: acked audit rows after mid-load crash: %v %v, want 3", mode, v, err)
		}
		if v, err := rds.DB().QueryScalar(`SELECT COUNT(*) FROM accel`); err != nil || v.Int() != 0 {
			t.Fatalf("mode %v: %v document rows leaked from open group (%v)", mode, v, err)
		}
		rds.Close()

		// Once the load's group frame is durable, the whole document is.
		after := fs.Clone()
		after.Crash(mode)
		rds2, err := OpenDurableVFS(Interval, after, Options{}, DurableOptions{})
		if err != nil {
			t.Fatalf("mode %v: post-load recovery: %v", mode, err)
		}
		n, err := rds2.Count(`/bib/book`)
		if err != nil || n != 2 {
			t.Fatalf("mode %v: post-load document query: %d books, %v", mode, n, err)
		}
		if v, err := rds2.DB().QueryScalar(`SELECT COUNT(*) FROM audit`); err != nil || v.Int() != 3 {
			t.Fatalf("mode %v: audit rows after post-load crash: %v %v", mode, v, err)
		}
		rds2.Close()
		ds.Close()
	}
}
