package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmlgen"
)

// Snapshot-isolation differential: a writer performs ordered subtree
// inserts while readers pin snapshots at commit boundaries and
// reconstruct the document from them concurrently. The XML produced
// from the snapshot pinned after insert k must be byte-identical to a
// serial store that replayed exactly the first k inserts — no torn
// reads, no rows from later commits. Run under `go test -race`, across
// the DOP matrix, for both order-preserving update schemes.

const snapBaseDoc = `<site><regions><namerica><item id="i1"><name>one</name><quantity>1</quantity></item><item id="i2"><name>two</name><quantity>2</quantity></item></namerica></regions><people><person id="p1"><name>alice</name></person></people></site>`

func snapFragment(i int) []byte {
	return []byte(fmt.Sprintf(`<item id="n%d"><name>new-%d</name><quantity>%d</quantity></item>`, i, i, i))
}

// openSnapStore opens a store under kind with the given parallelism and
// loads the shared base document.
func openSnapStore(t *testing.T, kind SchemeKind, dop int) *Store {
	t.Helper()
	st, err := OpenWith(kind, Options{Parallelism: dop})
	if err != nil {
		t.Fatalf("open %s: %v", kind, err)
	}
	if err := st.LoadXML([]byte(snapBaseDoc)); err != nil {
		t.Fatalf("load %s: %v", kind, err)
	}
	return st
}

// snapParent returns the node id of the insert target. Node ids are
// pre-order ranks of the originally loaded document, so the id is
// identical across independently loaded stores.
func snapParent(t *testing.T, st *Store) int64 {
	t.Helper()
	res, err := st.Query(`/site/regions/namerica`)
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("locating insert parent: %v (%d matches)", err, len(res.Matches))
	}
	return res.Matches[0].ID
}

func TestSnapshotReconstructDuringUpdates(t *testing.T) {
	const inserts = 12
	for _, kind := range []SchemeKind{Interval, Dewey} {
		for _, dop := range []int{1, 4, 16} {
			kind, dop := kind, dop
			t.Run(fmt.Sprintf("%s/dop=%d", kind, dop), func(t *testing.T) {
				st := openSnapStore(t, kind, dop)
				parent := snapParent(t, st)

				// Serial baselines: replay(k) is the document after
				// exactly the first k inserts, on an untouched store.
				replay := make([][]byte, inserts+1)
				for k := 0; k <= inserts; k++ {
					base := openSnapStore(t, kind, 1)
					for i := 0; i < k; i++ {
						if err := base.InsertXML(snapParent(t, base), 2+i, snapFragment(i)); err != nil {
							t.Fatalf("baseline insert %d: %v", i, err)
						}
					}
					var buf bytes.Buffer
					if err := base.WriteXML(&buf); err != nil {
						t.Fatalf("baseline reconstruct %d: %v", k, err)
					}
					replay[k] = buf.Bytes()
				}

				type pinned struct {
					k    int
					snap *StoreSnapshot
				}
				snaps := make(chan pinned, inserts+1)
				var wg sync.WaitGroup
				errc := make(chan error, 4)

				// Writer: pin a snapshot at every commit boundary, then
				// keep inserting while readers reconstruct the older
				// versions.
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer close(snaps)
					snaps <- pinned{0, st.Snapshot()}
					for i := 0; i < inserts; i++ {
						if err := st.InsertXML(parent, 2+i, snapFragment(i)); err != nil {
							errc <- fmt.Errorf("live insert %d: %w", i, err)
							return
						}
						snaps <- pinned{i + 1, st.Snapshot()}
					}
				}()

				// Dirty reader: unsynchronized queries against the live
				// store mid-insert; any result is fine, errors are not.
				stop := make(chan struct{})
				var dirtyWG sync.WaitGroup
				dirtyWG.Add(1)
				go func() {
					defer dirtyWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := st.Query(`/site/regions/namerica/item/name`); err != nil {
							errc <- fmt.Errorf("dirty reader: %w", err)
							return
						}
					}
				}()

				// Snapshot readers: reconstruct each pinned version while
				// the writer races ahead.
				var mu sync.Mutex
				got := map[int][]byte{}
				seqs := map[int]uint64{}
				for r := 0; r < 2; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for p := range snaps {
							var buf bytes.Buffer
							err := p.snap.WriteXML(&buf)
							seq := p.snap.Seq()
							p.snap.Release()
							if err != nil {
								errc <- fmt.Errorf("snapshot reconstruct k=%d: %w", p.k, err)
								return
							}
							mu.Lock()
							got[p.k] = buf.Bytes()
							seqs[p.k] = seq
							mu.Unlock()
						}
					}()
				}

				// Wait for the writer and snapshot readers, then stop
				// the dirty reader and surface any worker error.
				wg.Wait()
				close(stop)
				dirtyWG.Wait()
				close(errc)
				for err := range errc {
					t.Fatal(err)
				}

				for k := 0; k <= inserts; k++ {
					if !bytes.Equal(got[k], replay[k]) {
						t.Errorf("k=%d (seq %d): snapshot XML diverges from serial replay\n snap: %s\n want: %s",
							k, seqs[k], got[k], replay[k])
					}
					if k > 0 && seqs[k] <= seqs[k-1] {
						t.Errorf("snapshot seq not increasing: seq[%d]=%d seq[%d]=%d", k-1, seqs[k-1], k, seqs[k])
					}
				}
			})
		}
	}
}

// TestQueryContextCancel checks the cancellation satellite end to end:
// a context that is already canceled must abort execution inside the
// engine and surface context.Canceled, for serial and parallel plans,
// in both the row-at-a-time and the batch-at-a-time engine (where the
// poll happens once per batch instead of every 256 rows).
func TestQueryContextCancel(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 7})
	for _, dop := range []int{1, 4} {
		st, err := OpenWith(Interval, Options{Parallelism: dop})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.LoadDocument(doc); err != nil {
			t.Fatal(err)
		}
		for _, vec := range []bool{false, true} {
			st.DB().SetVectorized(vec)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err = st.QueryContext(ctx, `//open_auction[bidder/increase > 20]`)
			if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
				t.Errorf("dop=%d vec=%v: canceled query returned %v, want context.Canceled", dop, vec, err)
			}
			// The same query still works with a live context.
			if _, err := st.QueryContext(context.Background(), `//open_auction[bidder/increase > 20]`); err != nil {
				t.Errorf("dop=%d vec=%v: query after cancellation: %v", dop, vec, err)
			}
		}
	}
}
