package core

import (
	"strings"
	"testing"

	"repro/internal/xmlgen"
)

const smallDoc = `<bib><book year="1994"><title>TCP</title><price>65.95</price></book><book year="2000"><title>Web</title><price>39.95</price></book></bib>`

func TestOpenAllSchemes(t *testing.T) {
	for _, kind := range []SchemeKind{Edge, Binary, Universal, Interval, Dewey} {
		st, err := Open(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := st.LoadXML([]byte(smallDoc)); err != nil {
			t.Fatalf("%s load: %v", kind, err)
		}
		n, err := st.Count(`/bib/book[price < 50]/title`)
		if err != nil {
			t.Fatalf("%s query: %v", kind, err)
		}
		if n != 1 {
			t.Errorf("%s: count = %d", kind, n)
		}
		var b strings.Builder
		if err := st.WriteXML(&b); err != nil {
			t.Fatalf("%s publish: %v", kind, err)
		}
		if b.String() != smallDoc {
			t.Errorf("%s round trip:\n%s", kind, b.String())
		}
	}
}

func TestOpenInlineRequiresDTD(t *testing.T) {
	if _, err := OpenWith(Inline, Options{}); err == nil {
		t.Fatal("inline without DTD must fail")
	}
	st, err := OpenWith(Inline, Options{DTD: xmlgen.AuctionDTD, Root: "site"})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.01, Seed: 2})
	if err := st.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(`/site/people/person/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || !res.Matches[0].HasValue {
		t.Errorf("inline query matches = %+v", res.Matches)
	}
}

func TestOpenUnknownScheme(t *testing.T) {
	if _, err := Open("nonsense"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestDoubleLoadRejected(t *testing.T) {
	st, _ := Open(Interval)
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]byte(smallDoc)); err == nil {
		t.Fatal("second load accepted")
	}
}

func TestTranslateExposesSQL(t *testing.T) {
	st, _ := Open(Edge)
	_ = st.LoadXML([]byte(smallDoc))
	sql, err := st.Translate(`/bib/book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM edge") {
		t.Errorf("sql = %s", sql)
	}
	if _, err := st.Translate(`not a valid [ query`); err == nil {
		t.Error("bad query accepted")
	}
}

func TestInsertXML(t *testing.T) {
	st, _ := Open(Dewey)
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(`/bib`)
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("locate bib: %v", err)
	}
	if err := st.InsertXML(res.Matches[0].ID, 1, []byte(`<book year="1999"><title>Mid</title><price>10</price></book>`)); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count(`/bib/book`)
	if err != nil || n != 3 {
		t.Fatalf("after insert: %d %v", n, err)
	}
	// Order preserved: the new book sits in the middle.
	res, _ = st.Query(`/bib/book[2]/title`)
	if len(res.Matches) != 1 || res.Matches[0].Value != "Mid" {
		t.Errorf("middle book = %+v", res.Matches)
	}
}

func TestStats(t *testing.T) {
	st, _ := Open(Interval)
	_ = st.LoadXML([]byte(smallDoc))
	s := st.Stats()
	if s.Scheme != Interval || s.Rows == 0 || s.Bytes == 0 || s.Tables != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSaveAndReopen(t *testing.T) {
	for _, kind := range []SchemeKind{Interval, Dewey} {
		st, _ := Open(kind)
		if err := st.LoadXML([]byte(smallDoc)); err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := st.SaveDB(&buf); err != nil {
			t.Fatalf("%s save: %v", kind, err)
		}
		re, err := OpenSaved(kind, strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("%s reopen: %v", kind, err)
		}
		n, err := re.Count(`/bib/book[price < 50]/title`)
		if err != nil || n != 1 {
			t.Errorf("%s reopened query: %d %v", kind, n, err)
		}
		var out strings.Builder
		if err := re.WriteXML(&out); err != nil {
			t.Fatal(err)
		}
		if out.String() != smallDoc {
			t.Errorf("%s reopened round trip mismatch", kind)
		}
		// A second document may not be loaded into a reopened store.
		if err := re.LoadXML([]byte(smallDoc)); err == nil {
			t.Errorf("%s: double load after reopen accepted", kind)
		}
	}
	// Catalog-carrying schemes refuse snapshot reopen.
	if _, err := OpenSaved(Edge, strings.NewReader("")); err == nil {
		t.Error("edge snapshot reopen accepted")
	}
}

func TestResultsInDocumentOrder(t *testing.T) {
	for _, kind := range []SchemeKind{Edge, Binary, Interval, Dewey, Universal} {
		st, err := Open(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.LoadXML([]byte(smallDoc)); err != nil {
			t.Fatal(err)
		}
		res, err := st.Query(`//title`)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res.Matches) != 2 {
			t.Fatalf("%s: %d matches", kind, len(res.Matches))
		}
		if res.Matches[0].ID >= res.Matches[1].ID {
			t.Errorf("%s: results not in document order: %v", kind, res.Matches)
		}
		if res.Matches[0].Value != "TCP" || res.Matches[1].Value != "Web" {
			t.Errorf("%s: values = %v", kind, res.Matches)
		}
	}
}

func TestValueIndexOptionStillCorrect(t *testing.T) {
	st, err := OpenWith(Interval, Options{WithValueIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count(`/bib/book/title[. = 'Web']`)
	if err != nil || n != 1 {
		t.Fatalf("indexed value query: %d %v", n, err)
	}
}
