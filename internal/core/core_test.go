package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmlgen"
)

const smallDoc = `<bib><book year="1994"><title>TCP</title><price>65.95</price></book><book year="2000"><title>Web</title><price>39.95</price></book></bib>`

func TestOpenAllSchemes(t *testing.T) {
	for _, kind := range []SchemeKind{Edge, Binary, Universal, Interval, Dewey} {
		st, err := Open(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := st.LoadXML([]byte(smallDoc)); err != nil {
			t.Fatalf("%s load: %v", kind, err)
		}
		n, err := st.Count(`/bib/book[price < 50]/title`)
		if err != nil {
			t.Fatalf("%s query: %v", kind, err)
		}
		if n != 1 {
			t.Errorf("%s: count = %d", kind, n)
		}
		var b strings.Builder
		if err := st.WriteXML(&b); err != nil {
			t.Fatalf("%s publish: %v", kind, err)
		}
		if b.String() != smallDoc {
			t.Errorf("%s round trip:\n%s", kind, b.String())
		}
	}
}

func TestOpenInlineRequiresDTD(t *testing.T) {
	if _, err := OpenWith(Inline, Options{}); err == nil {
		t.Fatal("inline without DTD must fail")
	}
	st, err := OpenWith(Inline, Options{DTD: xmlgen.AuctionDTD, Root: "site"})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.01, Seed: 2})
	if err := st.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(`/site/people/person/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || !res.Matches[0].HasValue {
		t.Errorf("inline query matches = %+v", res.Matches)
	}
}

func TestOpenUnknownScheme(t *testing.T) {
	if _, err := Open("nonsense"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestDoubleLoadRejected(t *testing.T) {
	st, _ := Open(Interval)
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]byte(smallDoc)); err == nil {
		t.Fatal("second load accepted")
	}
}

func TestTranslateExposesSQL(t *testing.T) {
	st, _ := Open(Edge)
	_ = st.LoadXML([]byte(smallDoc))
	sql, err := st.Translate(`/bib/book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM edge") {
		t.Errorf("sql = %s", sql)
	}
	if _, err := st.Translate(`not a valid [ query`); err == nil {
		t.Error("bad query accepted")
	}
}

func TestInsertXML(t *testing.T) {
	st, _ := Open(Dewey)
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(`/bib`)
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("locate bib: %v", err)
	}
	if err := st.InsertXML(res.Matches[0].ID, 1, []byte(`<book year="1999"><title>Mid</title><price>10</price></book>`)); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count(`/bib/book`)
	if err != nil || n != 3 {
		t.Fatalf("after insert: %d %v", n, err)
	}
	// Order preserved: the new book sits in the middle.
	res, _ = st.Query(`/bib/book[2]/title`)
	if len(res.Matches) != 1 || res.Matches[0].Value != "Mid" {
		t.Errorf("middle book = %+v", res.Matches)
	}
}

func TestStats(t *testing.T) {
	st, _ := Open(Interval)
	_ = st.LoadXML([]byte(smallDoc))
	s := st.Stats()
	if s.Scheme != Interval || s.Rows == 0 || s.Bytes == 0 || s.Tables != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSaveAndReopen(t *testing.T) {
	for _, kind := range []SchemeKind{Interval, Dewey} {
		st, _ := Open(kind)
		if err := st.LoadXML([]byte(smallDoc)); err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := st.SaveDB(&buf); err != nil {
			t.Fatalf("%s save: %v", kind, err)
		}
		re, err := OpenSaved(kind, strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("%s reopen: %v", kind, err)
		}
		n, err := re.Count(`/bib/book[price < 50]/title`)
		if err != nil || n != 1 {
			t.Errorf("%s reopened query: %d %v", kind, n, err)
		}
		var out strings.Builder
		if err := re.WriteXML(&out); err != nil {
			t.Fatal(err)
		}
		if out.String() != smallDoc {
			t.Errorf("%s reopened round trip mismatch", kind)
		}
		// A second document may not be loaded into a reopened store.
		if err := re.LoadXML([]byte(smallDoc)); err == nil {
			t.Errorf("%s: double load after reopen accepted", kind)
		}
	}
	// Catalog-carrying schemes refuse snapshot reopen.
	if _, err := OpenSaved(Edge, strings.NewReader("")); err == nil {
		t.Error("edge snapshot reopen accepted")
	}
}

func TestResultsInDocumentOrder(t *testing.T) {
	for _, kind := range []SchemeKind{Edge, Binary, Interval, Dewey, Universal} {
		st, err := Open(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.LoadXML([]byte(smallDoc)); err != nil {
			t.Fatal(err)
		}
		res, err := st.Query(`//title`)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res.Matches) != 2 {
			t.Fatalf("%s: %d matches", kind, len(res.Matches))
		}
		if res.Matches[0].ID >= res.Matches[1].ID {
			t.Errorf("%s: results not in document order: %v", kind, res.Matches)
		}
		if res.Matches[0].Value != "TCP" || res.Matches[1].Value != "Web" {
			t.Errorf("%s: values = %v", kind, res.Matches)
		}
	}
}

func TestTranslationCacheCounters(t *testing.T) {
	st, _ := Open(Interval)
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	const q = `/bib/book/title`
	for i := 0; i < 3; i++ {
		if _, err := st.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	trans, plans := st.CacheStats()
	if trans.Misses != 1 || trans.Hits != 2 {
		t.Errorf("translation hits=%d misses=%d, want 2/1", trans.Hits, trans.Misses)
	}
	if plans.Hits == 0 {
		t.Errorf("plan cache saw no hits: %+v", plans)
	}
	// Identical results from cached and uncached paths.
	cached, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	st.SetTranslationCacheCapacity(0)
	st.DB().SetPlanCacheCapacity(0)
	fresh, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Matches) != len(fresh.Matches) || cached.SQL != fresh.SQL {
		t.Errorf("cached and fresh paths disagree: %d vs %d matches", len(cached.Matches), len(fresh.Matches))
	}
}

func TestTranslationCacheInvalidatedByInsert(t *testing.T) {
	// The edge scheme's descendant translation depends on its path
	// catalog, which grows when new element names arrive: a cached
	// translation from before the insert would miss the new paths.
	st, _ := Open(Edge)
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	const q = `//title`
	n, err := st.Count(q)
	if err != nil || n != 2 {
		t.Fatalf("before insert: %d %v", n, err)
	}
	res, err := st.Query(`/bib`)
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("locate bib: %v", err)
	}
	if err := st.InsertXML(res.Matches[0].ID, 2, []byte(`<article><title>New</title></article>`)); err != nil {
		t.Fatal(err)
	}
	n, err = st.Count(q)
	if err != nil || n != 3 {
		t.Fatalf("after insert: count = %d, %v (stale cached translation?)", n, err)
	}
}

// TestConcurrentQueriesWithWrites races cached Store queries against
// relational DML/DDL on the underlying database. Run under -race.
func TestConcurrentQueriesWithWrites(t *testing.T) {
	st, _ := Open(Interval)
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.02, Seed: 5})
	if err := st.LoadDocument(doc); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`/site/people/person/name`,
		`//item/name`,
		`/site/regions`,
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		n, err := st.Count(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want[i] = n
	}

	var wg sync.WaitGroup
	errc := make(chan error, 6)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				qi := (r + i) % len(queries)
				n, err := st.Count(queries[qi])
				if err != nil {
					errc <- err
					return
				}
				if n != want[qi] {
					errc <- fmt.Errorf("count %q = %d, want %d", queries[qi], n, want[qi])
					return
				}
			}
		}(r)
	}
	// Writer: DDL churn (epoch bumps) on an unrelated table plus index
	// create/drop on the store's own node table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		db := st.DB()
		for i := 0; i < 30; i++ {
			if _, err := db.Exec(`CREATE TABLE scratch (x INTEGER)`); err != nil {
				errc <- err
				return
			}
			if _, err := db.Exec(`DROP TABLE scratch`); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("concurrent worker: %v", err)
	}
}

func TestValueIndexOptionStillCorrect(t *testing.T) {
	st, err := OpenWith(Interval, Options{WithValueIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]byte(smallDoc)); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count(`/bib/book/title[. = 'Web']`)
	if err != nil || n != 1 {
		t.Fatalf("indexed value query: %d %v", n, err)
	}
}
