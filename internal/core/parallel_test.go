package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/xmlgen"
)

// Core-level differential battery for parallel execution: every scheme
// loads the same XMark document into a serial store and a parallel
// store; the F1 query mix plus a fuzz-derived XPath corpus must return
// identical match lists (ids, values, order) from both. This pins the
// end-to-end contract — shredded document order survives the morsel
// split — above the engine-level battery in sqldb.
var parallelCorpus = append(append([]string{}, f1Queries...),
	// Fuzz-derived shapes: deep descendants, chained predicates, empty
	// results, attribute tests, positional steps.
	"/site",
	"/site//item",
	"//bidder/increase",
	"/site/regions//item/name",
	"//open_auction[bidder/increase > 20]",
	"//person[profile/education]",
	"/site/people/person[address/city='Nowhere']/name",
	"//item[location='United States']/name",
	"/site/open_auctions/open_auction[3]/initial",
	"//category/description",
	"//person[@id='person0']/name",
	"/site/closed_auctions/closed_auction/price",
)

func TestParallelStoreMatchesSerial(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 11})
	parallelPlans := 0
	for _, kind := range []SchemeKind{Edge, Binary, Universal, Interval, Dewey, Inline} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			open := func(dop int) *Store {
				opts := Options{Parallelism: dop}
				if kind == Inline {
					opts.DTD = xmlgen.AuctionDTD
					opts.Root = "site"
				}
				st, err := OpenWith(kind, opts)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				if err := st.LoadDocument(doc); err != nil {
					t.Fatalf("load: %v", err)
				}
				return st
			}
			serial, parallel := open(1), open(8)
			if got := parallel.DB().Parallelism(); got != 8 {
				t.Fatalf("Options.Parallelism not wired: %d", got)
			}
			for _, q := range parallelCorpus {
				sql, err := serial.Translate(q)
				if err != nil {
					// Documented mapping limitation for this scheme.
					continue
				}
				want, err := serial.Query(q)
				if err != nil {
					t.Fatalf("%s: serial: %v", q, err)
				}
				got, err := parallel.Query(q)
				if err != nil {
					t.Fatalf("%s: parallel: %v", q, err)
				}
				if !reflect.DeepEqual(want.Matches, got.Matches) {
					t.Errorf("%s: parallel result diverges (%d vs %d matches)", q, len(want.Matches), len(got.Matches))
				}
				if plan, err := parallel.DB().Explain(sql); err == nil && strings.Contains(plan, "Gather") {
					parallelPlans++
				}
			}
		})
	}
	if parallelPlans == 0 {
		t.Error("no query on any scheme produced a parallel plan; the battery is not exercising parallelism")
	}
}
