package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/xmlgen"
)

// End-to-end differential for vectorized execution: every shredding
// scheme loads the same XMark document once, and the full query corpus
// (F1 mix + fuzz-derived shapes) must return identical match lists from
// the row-at-a-time and the batch-at-a-time engine at DOP 1, 4 and 16.
// The vectorized knob is toggled on the same store — it flips execution
// without invalidating plans, so both engines exercise the very same
// cached plan objects.

func TestVectorizedStoreMatchesSerial(t *testing.T) {
	doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 11})
	for _, kind := range []SchemeKind{Edge, Binary, Universal, Interval, Dewey, Inline} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			opts := Options{Parallelism: 1}
			if kind == Inline {
				opts.DTD = xmlgen.AuctionDTD
				opts.Root = "site"
			}
			st, err := OpenWith(kind, opts)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if err := st.LoadDocument(doc); err != nil {
				t.Fatalf("load: %v", err)
			}
			for _, dop := range []int{1, 4, 16} {
				st.DB().SetParallelism(dop)
				for _, q := range parallelCorpus {
					if _, err := st.Translate(q); err != nil {
						continue // documented mapping limitation
					}
					st.DB().SetVectorized(false)
					want, err := st.Query(q)
					if err != nil {
						t.Fatalf("dop=%d %s: row: %v", dop, q, err)
					}
					st.DB().SetVectorized(true)
					got, err := st.Query(q)
					if err != nil {
						t.Fatalf("dop=%d %s: vec: %v", dop, q, err)
					}
					if !reflect.DeepEqual(want.Matches, got.Matches) {
						t.Errorf("dop=%d %s: vectorized result diverges (%d vs %d matches)",
							dop, q, len(want.Matches), len(got.Matches))
					}
				}
			}
			// The vectorized passes must actually have flowed batches.
			batches := uint64(0)
			for _, op := range st.DB().Metrics().Operators {
				batches += op.Batches
			}
			if batches == 0 {
				t.Error("no batches recorded; the corpus did not exercise vectorized execution")
			}
		})
	}
}

// fuzzStore lazily builds the shared interval store for FuzzVectorExec
// (document shredding is far too slow to repeat per fuzz input).
var fuzzStore struct {
	once sync.Once
	st   *Store
	err  error
}

func vectorFuzzStore() (*Store, error) {
	fuzzStore.once.Do(func() {
		st, err := OpenWith(Interval, Options{Parallelism: 4})
		if err != nil {
			fuzzStore.err = err
			return
		}
		doc := xmlgen.Auction(xmlgen.Config{Factor: 0.05, Seed: 7})
		if err := st.LoadDocument(doc); err != nil {
			fuzzStore.err = err
			return
		}
		fuzzStore.st = st
	})
	return fuzzStore.st, fuzzStore.err
}

// FuzzVectorExec cross-checks vectorized against row-at-a-time
// execution on randomized predicates over the interval accelerator
// relation of a shredded XMark document: scans with modulus and range
// filters, grouped aggregation, the parent/child self join, and an
// XPath query with a fuzzed comparison constant. Any divergence in
// columns, values or row order is a finding.
func FuzzVectorExec(f *testing.F) {
	f.Add(uint16(7), uint16(3), uint8(2), uint8(5), int16(20))
	f.Add(uint16(1), uint16(0), uint8(0), uint8(0), int16(0))
	f.Add(uint16(1024), uint16(1023), uint8(11), uint8(63), int16(-5))
	f.Add(uint16(97), uint16(96), uint8(4), uint8(10), int16(1000))
	f.Fuzz(func(t *testing.T, mod, rem uint16, lvl, sz uint8, xc int16) {
		st, err := vectorFuzzStore()
		if err != nil {
			t.Skipf("store: %v", err)
		}
		db := st.DB()
		p := int64(mod%2048) + 1
		r := int64(rem) % p
		l := int64(lvl % 16)
		s := int64(sz % 64)
		sqls := []string{
			fmt.Sprintf(`SELECT pre, name FROM accel WHERE pre %% %d = %d AND level >= %d`, p, r, l),
			fmt.Sprintf(`SELECT kind, COUNT(*), MIN(pre), MAX(level) FROM accel WHERE size %% %d <> 1 GROUP BY kind`, s%7+2),
			fmt.Sprintf(`SELECT COUNT(*) FROM accel c, accel p WHERE c.parent = p.pre AND p.size > %d AND c.level > %d`, s, l),
			fmt.Sprintf(`SELECT name, value FROM accel WHERE name IS NOT NULL AND level = %d LIMIT %d`, l, p),
		}
		for _, sql := range sqls {
			db.SetVectorized(false)
			want, err := db.Query(sql)
			if err != nil {
				t.Fatalf("row %q: %v", sql, err)
			}
			db.SetVectorized(true)
			got, err := db.Query(sql)
			if err != nil {
				t.Fatalf("vec %q: %v", sql, err)
			}
			if !reflect.DeepEqual(want.Columns, got.Columns) || !reflect.DeepEqual(want.Data, got.Data) {
				t.Fatalf("engines diverged on %q: row %d rows, vec %d rows", sql, want.Len(), got.Len())
			}
		}
		// One XPath round trip with the fuzzed constant, through the
		// translator and both engines. The XPath grammar has no unary
		// minus, so the constant is clamped to its magnitude.
		xv := int64(xc)
		if xv < 0 {
			xv = -xv
		}
		xq := fmt.Sprintf(`//open_auction[bidder/increase > %d]`, xv)
		db.SetVectorized(false)
		want, err := st.Query(xq)
		if err != nil {
			t.Fatalf("row %q: %v", xq, err)
		}
		db.SetVectorized(true)
		got, err := st.Query(xq)
		if err != nil {
			t.Fatalf("vec %q: %v", xq, err)
		}
		if !reflect.DeepEqual(want.Matches, got.Matches) {
			t.Fatalf("engines diverged on %q: %d vs %d matches", xq, len(want.Matches), len(got.Matches))
		}
	})
}
