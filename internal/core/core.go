// Package core is the public face of xmlrdb: storage and retrieval of
// XML data using a relational database, per the ICDE 2003 tutorial this
// repository reproduces.
//
// A Store binds one mapping scheme (Edge, Binary, Universal, Interval,
// Dewey, or DTD-Inline) to an embedded relational database. Documents
// go in as XML text; XPath queries come back as (node id, value) rows
// compiled to SQL over the chosen layout; the stored document can be
// published back out as XML.
//
//	st, _ := core.Open(core.Interval)
//	_ = st.LoadXML([]byte(`<bib><book year="1967"><title>...</title></book></bib>`))
//	res, _ := st.Query(`/bib/book[@year='1967']/title`)
//	for _, m := range res.Matches {
//		fmt.Println(m.ID, m.Value)
//	}
package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/lru"
	"repro/internal/shred"
	"repro/internal/sqldb"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

// SchemeKind selects a mapping scheme.
type SchemeKind string

// Available schemes.
const (
	// Edge stores one relation of parent-child edges (Florescu &
	// Kossmann); descendant steps expand to unions of join chains.
	Edge SchemeKind = "edge"
	// Binary partitions the edge relation by label.
	Binary SchemeKind = "binary"
	// Universal denormalizes every root-to-leaf path into one wide
	// relation (the strawman).
	Universal SchemeKind = "universal"
	// Interval stores pre/size/level region numbers (the XPath
	// accelerator); every axis is a range predicate.
	Interval SchemeKind = "interval"
	// Dewey stores dotted order-preserving path labels; ancestry is a
	// prefix test and ordered inserts are local.
	Dewey SchemeKind = "dewey"
	// Inline derives a real relational schema from a DTD via shared
	// inlining (requires Options.DTD).
	Inline SchemeKind = "inline"
)

// Options configure a Store.
type Options struct {
	// WithValueIndex adds content-value indexes (the F5 ablation).
	WithValueIndex bool
	// DTD supplies the document type for the Inline scheme (ignored by
	// the others). Root optionally names the document element.
	DTD  string
	Root string
	// Parallelism sets the engine's intra-query degree of parallelism:
	// 0 = automatic (GOMAXPROCS), 1 = serial, n>1 = at most n workers.
	Parallelism int
	// Vectorized enables batch-at-a-time query execution (the engine's
	// default follows XRDB_VECTORIZED; this forces it on).
	Vectorized bool
	// MemoryBudget caps the engine's total tracked query memory in
	// bytes; queries that would push the shared pool past it abort with
	// sqldb.ErrMemoryBudgetExceeded. 0 disables the budget.
	MemoryBudget int64
	// QueryMemoryLimit caps each individual query's tracked memory in
	// bytes. 0 disables the per-query limit.
	QueryMemoryLimit int64
	// MaxConcurrentQueries bounds how many queries execute at once;
	// excess queries wait in a queue of at most MaxQueuedQueries and
	// are rejected with sqldb.ErrOverloaded when it is full. 0 disables
	// admission control.
	MaxConcurrentQueries int
	MaxQueuedQueries     int
	// BufferPoolPages caps how many 512-row heap pages the engine keeps
	// resident; full pages beyond the cap spill to disk and page back in
	// on demand. 0 keeps every page in memory (the default).
	BufferPoolPages int
}

// defaultTransCacheCap bounds the per-Store XPath→SQL translation
// cache. Entries are just strings, so the cap is generous relative to
// realistic query-template counts.
const defaultTransCacheCap = 512

// Store is one XML document stored relationally under a mapping scheme.
type Store struct {
	kind   SchemeKind
	scheme shred.Scheme
	db     *sqldb.Database
	loaded bool

	// trans caches XPath query text → generated SQL. Translation is a
	// pure function of the scheme and its catalogs, so the cache is
	// invalidated (purged) whenever scheme state may change: document
	// load and subtree insertion. Relational DDL is covered one layer
	// down by the sqldb plan cache's schema epoch.
	trans                  *lru.Cache[string]
	transHits, transMisses atomic.Uint64
	transInvalidations     atomic.Uint64

	// Phase timers decompose end-to-end latency: shred (document load
	// and subtree insertion), translate (XPath→SQL), exec (relational
	// execution), publish (reconstruction/serialization). Plan-compile
	// time, the fourth component, is tracked one layer down by the
	// sqldb metrics registry.
	shredPhase, translatePhase, execPhase, publishPhase phaseTimer
}

// phaseTimer accumulates a span count and total duration; atomic so
// concurrent readers can record without coordination.
type phaseTimer struct {
	count atomic.Uint64
	ns    atomic.Int64
}

func (p *phaseTimer) add(d time.Duration) {
	p.count.Add(1)
	p.ns.Add(int64(d))
}

func (p *phaseTimer) stat() PhaseStat {
	return PhaseStat{Count: p.count.Load(), Total: time.Duration(p.ns.Load())}
}

// PhaseStat is one phase's cumulative activity.
type PhaseStat struct {
	Count uint64
	Total time.Duration
}

// PhaseStats decomposes the store's cumulative end-to-end latency.
type PhaseStats struct {
	// Shred covers document loading and subtree insertion.
	Shred PhaseStat
	// Translate covers XPath parsing and SQL generation (cache hits
	// included: the span wraps the whole call).
	Translate PhaseStat
	// Exec covers relational execution (plan-compile time within it is
	// reported by sqldb's metrics registry).
	Exec PhaseStat
	// Publish covers reconstruction and XML serialization.
	Publish PhaseStat
}

// PhaseStats returns the cumulative per-phase timing spans.
func (st *Store) PhaseStats() PhaseStats {
	return PhaseStats{
		Shred:     st.shredPhase.stat(),
		Translate: st.translatePhase.stat(),
		Exec:      st.execPhase.stat(),
		Publish:   st.publishPhase.stat(),
	}
}

// Open creates an empty Store with default options.
func Open(kind SchemeKind) (*Store, error) {
	return OpenWith(kind, Options{})
}

// OpenWith creates an empty Store.
func OpenWith(kind SchemeKind, opts Options) (*Store, error) {
	var s shred.Scheme
	switch kind {
	case Edge:
		s = shred.NewEdge(opts.WithValueIndex)
	case Binary:
		s = shred.NewBinary(opts.WithValueIndex)
	case Universal:
		s = shred.NewUniversal()
	case Interval:
		s = shred.NewInterval(opts.WithValueIndex)
	case Dewey:
		s = shred.NewDewey(opts.WithValueIndex)
	case Inline:
		if opts.DTD == "" {
			return nil, fmt.Errorf("core: the inline scheme requires Options.DTD")
		}
		var err error
		s, err = shred.NewInline(opts.DTD, opts.Root)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", kind)
	}
	db := sqldb.New()
	if opts.Parallelism > 0 {
		db.SetParallelism(opts.Parallelism)
	}
	if opts.Vectorized {
		db.SetVectorized(true)
	}
	if opts.MemoryBudget > 0 {
		db.SetMemoryBudget(opts.MemoryBudget)
	}
	if opts.QueryMemoryLimit > 0 {
		db.SetQueryMemoryLimit(opts.QueryMemoryLimit)
	}
	if opts.MaxConcurrentQueries > 0 {
		db.SetAdmissionControl(opts.MaxConcurrentQueries, opts.MaxQueuedQueries)
	}
	if opts.BufferPoolPages > 0 {
		db.SetBufferPool(opts.BufferPoolPages)
	}
	if err := s.Setup(db); err != nil {
		return nil, err
	}
	return &Store{kind: kind, scheme: s, db: db, trans: lru.New[string](defaultTransCacheCap)}, nil
}

// Kind returns the store's scheme.
func (st *Store) Kind() SchemeKind { return st.kind }

// DB exposes the underlying relational database for direct SQL (the
// escape hatch the tutorial's SQL/X discussion motivates).
func (st *Store) DB() *sqldb.Database { return st.db }

// LoadXML parses and shreds an XML document. A Store holds exactly one
// document.
func (st *Store) LoadXML(src []byte) error {
	return st.LoadXMLContext(context.Background(), src)
}

// LoadXMLContext is LoadXML honoring a context: cancellation or
// deadline expiry aborts the shred at its next bulk-insert batch.
func (st *Store) LoadXMLContext(ctx context.Context, src []byte) error {
	doc, err := xmldom.Parse(src)
	if err != nil {
		return err
	}
	return st.LoadDocumentContext(ctx, doc)
}

// LoadXMLStream shreds a document directly from a stream. When the
// scheme supports streaming shredding (Edge and Interval), the
// document is parsed and shredded in one pass with memory proportional
// to its depth plus one insert batch — the full DOM is never built.
// Other schemes fall back to reading the stream and parsing in memory.
// On error the store may hold a partial shred; discard it.
func (st *Store) LoadXMLStream(ctx context.Context, r io.Reader) error {
	if st.loaded {
		return fmt.Errorf("core: store already holds a document")
	}
	sl, ok := st.scheme.(shred.StreamLoader)
	if !ok {
		src, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		return st.LoadXMLContext(ctx, src)
	}
	start := time.Now()
	if err := sl.LoadStream(ctx, st.db, xmldom.NewTokenizer(r)); err != nil {
		return err
	}
	st.shredPhase.add(time.Since(start))
	st.loaded = true
	st.invalidateTranslations()
	return nil
}

// LoadDocument shreds an already-parsed document.
func (st *Store) LoadDocument(doc *xmldom.Document) error {
	return st.LoadDocumentContext(context.Background(), doc)
}

// LoadDocumentContext is LoadDocument honoring a context, checked at
// shred-batch granularity.
func (st *Store) LoadDocumentContext(ctx context.Context, doc *xmldom.Document) error {
	if st.loaded {
		return fmt.Errorf("core: store already holds a document")
	}
	start := time.Now()
	var err error
	if cl, ok := st.scheme.(shred.ContextLoader); ok {
		err = cl.LoadContext(ctx, st.db, doc)
	} else {
		err = st.scheme.Load(st.db, doc)
	}
	if err != nil {
		return err
	}
	st.shredPhase.add(time.Since(start))
	st.loaded = true
	st.invalidateTranslations()
	return nil
}

// invalidateTranslations purges the translation cache after an
// operation that may change scheme state (path catalogs, element
// numbering) and with it the SQL a given XPath translates to.
func (st *Store) invalidateTranslations() {
	if n := st.trans.Len(); n > 0 {
		st.transInvalidations.Add(uint64(n))
	}
	st.trans.Purge()
}

// Match is one query result: the matched node's id (pre-order rank in
// the loaded document; host-row id under Inline) and its string value
// when the scheme stores it inline.
type Match struct {
	ID    int64
	Value string
	// HasValue distinguishes an empty value from an absent one.
	HasValue bool
}

// Result is a query result set in document order.
type Result struct {
	Query   string
	SQL     string
	Matches []Match
}

// Translate compiles an XPath query to this store's SQL without running
// it. Translations are served from a bounded per-Store cache: the
// XPath→SQL mapping is pure for a fixed scheme state, so repeated query
// templates skip XPath parsing and SQL generation entirely. The cache
// is purged when scheme state changes (document load, subtree insert).
func (st *Store) Translate(query string) (string, error) {
	start := time.Now()
	defer func() { st.translatePhase.add(time.Since(start)) }()
	if sql, ok := st.trans.Get(query); ok {
		st.transHits.Add(1)
		return sql, nil
	}
	st.transMisses.Add(1)
	p, err := xpath.Parse(query)
	if err != nil {
		return "", err
	}
	sql, err := st.scheme.Translate(p)
	if err != nil {
		return "", err
	}
	st.trans.Put(query, sql)
	return sql, nil
}

// Query compiles and executes an XPath query.
func (st *Store) Query(query string) (*Result, error) {
	return st.QueryContext(context.Background(), query)
}

// QueryContext is Query honoring a context: cancellation or deadline
// expiry aborts the SQL execution at its next operator chokepoint and
// returns the context's error.
func (st *Store) QueryContext(ctx context.Context, query string) (*Result, error) {
	sql, err := st.Translate(query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, err := st.db.QueryContext(ctx, sql)
	if err != nil {
		return nil, fmt.Errorf("core: executing translation of %q: %w", query, err)
	}
	st.execPhase.add(time.Since(start))
	return resultFrom(query, sql, rows), nil
}

// resultFrom extracts Matches from a translated query's row set.
func resultFrom(query, sql string, rows *sqldb.Rows) *Result {
	res := &Result{Query: query, SQL: sql, Matches: make([]Match, 0, rows.Len())}
	for _, r := range rows.Data {
		m := Match{ID: r[0].Int()}
		if len(r) > 1 && !r[1].IsNull() {
			m.Value = r[1].Text()
			m.HasValue = true
		}
		res.Matches = append(res.Matches, m)
	}
	return res
}

// ExplainAnalyze translates an XPath query and executes it under full
// per-operator instrumentation, returning the annotated physical plan
// (see sqldb.Database.ExplainAnalyze).
func (st *Store) ExplainAnalyze(query string) (string, error) {
	sql, err := st.Translate(query)
	if err != nil {
		return "", err
	}
	start := time.Now()
	text, err := st.db.ExplainAnalyze(sql)
	if err != nil {
		return "", fmt.Errorf("core: analyzing translation of %q: %w", query, err)
	}
	st.execPhase.add(time.Since(start))
	return text, nil
}

// Count runs a query and returns only the cardinality.
func (st *Store) Count(query string) (int, error) {
	res, err := st.Query(query)
	if err != nil {
		return 0, err
	}
	return len(res.Matches), nil
}

// Reconstruct rebuilds the stored document from its tuples.
func (st *Store) Reconstruct() (*xmldom.Document, error) {
	start := time.Now()
	doc, err := st.scheme.Reconstruct(st.db)
	if err != nil {
		return nil, err
	}
	st.publishPhase.add(time.Since(start))
	return doc, nil
}

// WriteXML publishes the stored document as XML text.
func (st *Store) WriteXML(w io.Writer) error {
	doc, err := st.Reconstruct()
	if err != nil {
		return err
	}
	return xmldom.Serialize(w, doc.Root)
}

// InsertXML inserts an XML fragment as the position-th child of the
// element with the given node id.
func (st *Store) InsertXML(parentID int64, position int, fragment []byte) error {
	// Wrap so the fragment parses as a document.
	doc, err := xmldom.Parse(fragment)
	if err != nil {
		return err
	}
	root := doc.RootElement()
	if root == nil {
		return fmt.Errorf("core: fragment has no element")
	}
	start := time.Now()
	if err := st.scheme.InsertSubtree(st.db, parentID, position, root.Copy()); err != nil {
		return err
	}
	st.shredPhase.add(time.Since(start))
	st.invalidateTranslations()
	return nil
}

// SaveDB writes a snapshot of the store's relational database to a
// stream. Reopen it with OpenSaved. For writing to a file, prefer
// SaveDBFile, which replaces the destination atomically.
func (st *Store) SaveDB(w io.Writer) error {
	return st.db.Save(w)
}

// SaveDBFile writes a snapshot to path atomically: the snapshot goes
// to a temp file in the same directory, is fsynced, renamed over the
// destination, and the directory is fsynced — a crash mid-save never
// leaves a torn snapshot at the final path.
func (st *Store) SaveDBFile(path string) error {
	var buf bytes.Buffer
	if err := st.db.Save(&buf); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	fs, err := sqldb.NewOSVFS(dir)
	if err != nil {
		return err
	}
	return sqldb.WriteFileAtomic(fs, filepath.Base(path), buf.Bytes())
}

// Loaded reports whether the store holds a document.
func (st *Store) Loaded() bool { return st.loaded }

// OpenSaved reopens a store from a snapshot written by SaveDB. Only the
// stateless schemes can be reopened this way: Interval and Dewey keep
// all their state in the database. (Edge, Binary, Universal and Inline
// carry in-memory catalogs/mappings that a snapshot does not capture —
// reload those from the XML source.)
func OpenSaved(kind SchemeKind, r io.Reader) (*Store, error) {
	var s shred.Scheme
	switch kind {
	case Interval:
		s = shred.NewInterval(false)
	case Dewey:
		s = shred.NewDewey(false)
	default:
		return nil, fmt.Errorf("core: scheme %q cannot be reopened from a snapshot (in-memory mapping state); reload from XML", kind)
	}
	db, err := sqldb.LoadFrom(r)
	if err != nil {
		return nil, err
	}
	return &Store{kind: kind, scheme: s, db: db, loaded: true, trans: lru.New[string](defaultTransCacheCap)}, nil
}

// StorageStats summarizes the relational footprint of the store.
type StorageStats struct {
	Scheme SchemeKind
	Tables int
	Rows   int
	Bytes  int64
}

// Stats reports the store's storage footprint (experiment T1).
func (st *Store) Stats() StorageStats {
	return StorageStats{
		Scheme: st.kind,
		Tables: len(st.db.TableNames()),
		Rows:   st.db.TotalRows(),
		Bytes:  st.db.TotalBytes(),
	}
}

// CacheStats reports the store's two query-acceleration caches: the
// XPath→SQL translation cache (this layer) and the SQL plan cache
// (inside sqldb, epoch-invalidated on DDL).
func (st *Store) CacheStats() (translation, plan sqldb.CacheStats) {
	translation = sqldb.CacheStats{
		Capacity:      st.trans.Cap(),
		Entries:       st.trans.Len(),
		Hits:          st.transHits.Load(),
		Misses:        st.transMisses.Load(),
		Evictions:     st.trans.Evictions(),
		Invalidations: st.transInvalidations.Load(),
	}
	return translation, st.db.PlanCacheStats()
}

// SetTranslationCacheCapacity resizes the XPath→SQL cache; zero
// disables it (every query re-translates).
func (st *Store) SetTranslationCacheCapacity(n int) {
	st.trans.Resize(n)
}

// Scheme exposes the underlying shred.Scheme for advanced use (the
// experiment harness).
func (st *Store) Scheme() shred.Scheme { return st.scheme }
