package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/xmlgen"
)

// TestLoadXMLStreamMatchesLoadXML pins the streaming load to the DOM
// load: same document, same queries, same answers — for a scheme with
// native streaming (Interval) and one using the fallback (Dewey).
func TestLoadXMLStreamMatchesLoadXML(t *testing.T) {
	src := xmlgen.AuctionXML(xmlgen.Config{Factor: 0.02, Seed: 5})
	queries := []string{
		"/site/people/person/name",
		"//item/name",
		"/site/people/person[@id='person3']",
	}
	for _, kind := range []SchemeKind{Interval, Edge, Dewey} {
		dom, err := Open(kind)
		if err != nil {
			t.Fatalf("%s open: %v", kind, err)
		}
		if err := dom.LoadXML([]byte(src)); err != nil {
			t.Fatalf("%s dom load: %v", kind, err)
		}
		stream, err := Open(kind)
		if err != nil {
			t.Fatalf("%s open: %v", kind, err)
		}
		if err := stream.LoadXMLStream(context.Background(), strings.NewReader(src)); err != nil {
			t.Fatalf("%s stream load: %v", kind, err)
		}
		if !stream.Loaded() {
			t.Fatalf("%s stream store not marked loaded", kind)
		}
		for _, q := range queries {
			want, err := dom.Query(q)
			if err != nil {
				t.Fatalf("%s dom %s: %v", kind, q, err)
			}
			got, err := stream.Query(q)
			if err != nil {
				t.Fatalf("%s stream %s: %v", kind, q, err)
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("%s %s: %d matches, want %d", kind, q, len(got.Matches), len(want.Matches))
			}
			for i := range want.Matches {
				if got.Matches[i] != want.Matches[i] {
					t.Fatalf("%s %s: match %d = %+v, want %+v", kind, q, i, got.Matches[i], want.Matches[i])
				}
			}
		}
	}
}

// TestDurableLoadXMLStream verifies a streamed durable load survives
// reopen, under a capped buffer pool.
func TestDurableLoadXMLStream(t *testing.T) {
	dir := t.TempDir()
	src := xmlgen.AuctionXML(xmlgen.Config{Factor: 0.02, Seed: 9})
	opts := Options{BufferPoolPages: 8}

	ds, err := OpenDurable(Interval, dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := ds.LoadXMLStream(context.Background(), strings.NewReader(src)); err != nil {
		t.Fatalf("stream load: %v", err)
	}
	res, err := ds.Query("/site/people/person/name")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Matches) == 0 {
		t.Fatalf("no matches after streamed load")
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	ds2, err := OpenDurable(Interval, dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ds2.Close()
	res2, err := ds2.Query("/site/people/person/name")
	if err != nil {
		t.Fatalf("reopen query: %v", err)
	}
	if len(res2.Matches) != len(res.Matches) {
		t.Fatalf("reopen lost rows: %d vs %d", len(res2.Matches), len(res.Matches))
	}
	st := ds2.DB().Stats()
	if st.BufferPool.Cap != 8 {
		t.Fatalf("pool cap = %d, want 8", st.BufferPool.Cap)
	}
}

// TestOptionsBufferPool verifies the in-memory knob reaches the engine.
func TestOptionsBufferPool(t *testing.T) {
	st, err := OpenWith(Interval, Options{BufferPoolPages: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if got := st.DB().BufferPool(); got != 4 {
		t.Fatalf("BufferPool() = %d, want 4", got)
	}
}
